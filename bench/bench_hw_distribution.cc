/**
 * @file
 * Reproduces Fig. 6 (analytic vs measured Hamming-weight probability),
 * Table 2 (syndrome probability by HW for d = 3/5/7 at p = 1e-4), and
 * Table 5 (d = 7 at p = 1e-3 vs 1e-4).
 *
 * Usage: bench_hw_distribution [--shots=2000000] [--seed=1]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/hw_histogram.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

namespace
{

HwDistribution
measure(uint32_t d, double p, uint64_t shots, uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);
    return measureHwDistribution(ctx, shots, seed);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 2000000);
    const uint64_t seed = opts.getUint("seed", 1);

    benchBanner("Fig 6 / Table 2 / Table 5",
                "syndrome-vector probability by Hamming weight");
    std::printf("shots per configuration: %llu "
                "(paper: 1e9)\n\n",
                static_cast<unsigned long long>(shots));

    // ------------------------------------------------ Fig. 6 (d = 7)
    std::printf("--- Fig 6: analytic upper bound vs measured "
                "(d=7, p=1e-4) ---\n");
    HwDistribution d7 = measure(7, 1e-4, shots, seed);
    std::printf("%-6s %-14s %-14s\n", "HW", "model", "measured");
    for (uint32_t h = 0; h <= 12; h += 2) {
        std::printf("%-6u %-14s %-14s\n", h,
                    formatProb(analyticHwProbability(7, 1e-4, h)).c_str(),
                    formatProb(d7.frequency(h)).c_str());
    }

    // ------------------------------------------------------- Table 2
    std::printf("\n--- Table 2: probability by HW bucket at p=1e-4 "
                "---\n");
    std::printf("%-12s %-14s %-14s %-14s\n", "HW bucket", "d=3", "d=5",
                "d=7");
    HwDistribution d3 = measure(3, 1e-4, shots, seed + 1);
    HwDistribution d5 = measure(5, 1e-4, shots, seed + 2);
    struct Bucket
    {
        const char *label;
        size_t lo, hi;
    };
    const Bucket buckets[] = {{"0", 0, 0},     {"1,2", 1, 2},
                              {"3,4", 3, 4},   {"5,6", 5, 6},
                              {"7-10", 7, 10}};
    for (const auto &b : buckets) {
        std::printf("%-12s %-14s %-14s %-14s\n", b.label,
                    formatProb(d3.rangeFrequency(b.lo, b.hi)).c_str(),
                    formatProb(d5.rangeFrequency(b.lo, b.hi)).c_str(),
                    formatProb(d7.rangeFrequency(b.lo, b.hi)).c_str());
    }
    std::printf("%-12s %-14s %-14s %-14s\n", "> 10",
                formatProb(d3.hist.tailFrequency(10)).c_str(),
                formatProb(d5.hist.tailFrequency(10)).c_str(),
                formatProb(d7.hist.tailFrequency(10)).c_str());
    printPaperRef("Table 2 row '>10', d=7", "4e-6");
    printPaperRef("Table 2 row '0', d=7", "0.86");

    // ------------------------------------------------------- Table 5
    std::printf("\n--- Table 5: d=7 at p=1e-3 vs p=1e-4 ---\n");
    HwDistribution d7hi = measure(7, 1e-3, shots, seed + 3);
    std::printf("%-12s %-14s %-14s\n", "HW bucket", "p=1e-3", "p=1e-4");
    std::printf("%-12s %-14s %-14s\n", "0",
                formatProb(d7hi.frequency(0)).c_str(),
                formatProb(d7.frequency(0)).c_str());
    std::printf("%-12s %-14s %-14s\n", "1 to 10",
                formatProb(d7hi.rangeFrequency(1, 10)).c_str(),
                formatProb(d7.rangeFrequency(1, 10)).c_str());
    std::printf("%-12s %-14s %-14s\n", "> 10",
                formatProb(d7hi.hist.tailFrequency(10)).c_str(),
                formatProb(d7.hist.tailFrequency(10)).c_str());
    printPaperRef("Table 5 '>10' at p=1e-3", "0.003");
    printPaperRef("Table 5 '0' at p=1e-3", "0.22");
    return 0;
}
