/**
 * @file
 * Reproduces Fig. 3: the wall-clock decode-latency distribution of the
 * software MWPM (blossom) decoder at d = 7, and the fraction of
 * non-zero syndromes it cannot decode within the 1 us real-time
 * deadline (the paper reports 96% for BlossomV).
 *
 * Absolute times depend on the host CPU; the claim being reproduced is
 * the *shape*: software matching misses the deadline for the great
 * majority of non-trivial syndromes.
 *
 * Usage: bench_blossom_latency [--shots=50000] [--p=1e-3]
 *                              [--json-out=report.json]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/latency_stats.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 50000);
    const double p = opts.getDouble("p", 1e-3);
    const uint64_t seed = opts.getUint("seed", 5);
    const std::string json_out = initBenchReport(opts);

    benchBanner("Fig 3", "software MWPM (blossom) decoding latency");
    std::printf("d=7, p=%g, %llu shots (non-zero syndromes only)\n\n",
                p, static_cast<unsigned long long>(shots));

    ExperimentConfig cfg;
    cfg.distance = 7;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);

    LatencyHistogram hist =
        measureLatencyDistribution(ctx, mwpmFactory(), shots, seed);

    std::printf("%-16s %-10s\n", "latency bucket", "fraction");
    for (size_t b = 0; b < hist.numBuckets(); b += 4) {
        double f = hist.bucketFraction(b) + hist.bucketFraction(b + 1) +
                   hist.bucketFraction(b + 2) +
                   hist.bucketFraction(b + 3);
        if (f < 1e-4)
            continue;
        std::printf("%6.1f-%6.1f us %8.2f%%  ",
                    hist.bucketLowNs(b) / 1000.0,
                    (hist.bucketLowNs(b) + 200.0) / 1000.0, 100.0 * f);
        for (int bar = 0; bar < static_cast<int>(f * 120.0) && bar < 50;
             bar++) {
            std::printf("#");
        }
        std::printf("\n");
    }

    std::printf("\nnon-zero syndromes decoded: %llu\n",
                static_cast<unsigned long long>(hist.samples()));
    std::printf("mean latency: %.0f ns, max: %.0f ns\n", hist.meanNs(),
                hist.maxNs());
    std::printf("p50: %.0f ns, p90: %.0f ns, p99: %.0f ns\n",
                hist.p50Ns(), hist.p90Ns(), hist.p99Ns());
    std::printf("fraction exceeding the 1 us deadline: %.1f%%\n",
                100.0 * hist.fractionAbove(1000.0));
    printPaperRef("Fig 3 (BlossomV, d=7)",
                  "96% of non-zero syndromes exceed 1 us");

    if (!json_out.empty()) {
        telemetry::JsonWriter report;
        beginBenchReport(report, "blossom_latency");
        report.kv("d", uint64_t{7}).kv("p", p).kv("shots", shots)
            .kv("seed", seed);
        report.endObject();  // config
        report.key("results").beginObject();
        report.kv("samples", hist.samples());
        report.kv("mean_ns", hist.meanNs());
        report.kv("max_ns", hist.maxNs());
        report.kv("p50_ns", hist.p50Ns());
        report.kv("p90_ns", hist.p90Ns());
        report.kv("p99_ns", hist.p99Ns());
        report.kv("fraction_above_1us", hist.fractionAbove(1000.0));
        report.endObject();  // results
        finishBenchReport(report, json_out);
    }
    return 0;
}
