/**
 * @file
 * Reproduces Fig. 4: logical error rate vs code distance at p = 1e-4
 * for MWPM, the Union-Find decoder (AFS), and Clique+MWPM.
 *
 * The LERs in this regime (8e-6 down to 6e-9) are far below what
 * direct Monte Carlo can resolve on a laptop, so this bench uses the
 * paper's own appendix estimator (Eq. 3): LER = sum_k Po(k) Pf(k),
 * with Pf(k) measured by injecting exactly k faults per shot. All
 * decoders see identical fault sets (same seed), so ratios are paired.
 *
 * Usage: bench_ler_vs_distance [--shots-per-k=20000] [--kmax=8]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 20);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 400000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 8));
    sa.seed = opts.getUint("seed", 11);
    const double p = opts.getDouble("p", 1e-4);

    benchBanner("Fig 4", "LER vs distance at p = 1e-4 "
                         "(semi-analytic, Eq. 3)");
    std::printf("p=%g, %llu injected shots per fault count, "
                "k <= %u\n\n",
                p, static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    std::printf("%-6s %-14s %-14s %-14s %-14s\n", "d", "MWPM",
                "UF(AFS)", "UF-weighted", "Clique+MWPM");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto r = estimateLerSemiAnalyticMulti(
            ctx,
            {mwpmFactory(), unionFindFactory(),
             unionFindFactory(UnionFindConfig{true}), cliqueFactory()},
            sa);

        std::printf("%-6u %-14s %-14s %-14s %-14s\n", d,
                    formatProb(r[0].ler).c_str(),
                    formatProb(r[1].ler).c_str(),
                    formatProb(r[2].ler).c_str(),
                    formatProb(r[3].ler).c_str());
    }
    std::printf("\n");
    printPaperRef("Fig 4 MWPM at d=3/5/7", "8.1e-6 / 1.3e-7 / 6.0e-9");
    printPaperRef("Fig 4 shape",
                  "AFS ~100-1000x worse than MWPM; Clique a few x");
    return 0;
}
