/**
 * @file
 * Ablation: syndrome-extraction CX scheduling.
 *
 * The generator's default schedule orients hook errors (mid-extraction
 * ancilla faults that spread to two data qubits) perpendicular to the
 * logical operators; the HookAligned variant swaps the middle CX
 * layers so hooks run parallel to the logicals, the classic mistake
 * that halves the effective code distance. The LER gap — absent from
 * the paper but implicit in every surface-code circuit design — shows
 * why the decoding substrate must model the circuit, not just the
 * code.
 *
 * Usage: bench_ablation_cx_schedule [--shots=200000] [--p=2e-3]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 200000);
    const double p = opts.getDouble("p", 2e-3);
    const uint64_t seed = opts.getUint("seed", 47);

    benchBanner("Ablation", "CX schedule: hook-safe vs hook-aligned");
    std::printf("p=%g, %llu shots per point, MWPM decoding\n\n", p,
                static_cast<unsigned long long>(shots));

    std::printf("%-4s %-16s %-16s %-8s\n", "d", "standard",
                "hook-aligned", "penalty");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig good_cfg;
        good_cfg.distance = d;
        good_cfg.physicalErrorRate = p;
        ExperimentConfig bad_cfg = good_cfg;
        bad_cfg.cxSchedule = CxSchedule::HookAligned;

        ExperimentContext good(good_cfg);
        ExperimentContext bad(bad_cfg);
        auto rg = runMemoryExperiment(good, mwpmFactory(), shots, seed);
        auto rb = runMemoryExperiment(bad, mwpmFactory(), shots, seed);
        double penalty =
            rg.ler() > 0 ? rb.ler() / rg.ler() : 0.0;
        std::printf("%-4u %-16s %-16s %-8.2f\n", d,
                    formatProb(rg.ler()).c_str(),
                    formatProb(rb.ler()).c_str(), penalty);
    }
    std::printf("\nThe penalty grows with distance: aligned hooks act "
                "like a halved code\ndistance, so the gap widens "
                "exponentially below threshold.\n");
    return 0;
}
