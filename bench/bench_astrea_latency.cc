/**
 * @file
 * Reproduces Fig. 9: Astrea's mean, mean-over-nontrivial (HW > 2) and
 * maximum modeled latency for d = 3, 5, 7 at p = 1e-4, on the 250 MHz
 * FPGA cycle model of Sec. 5.4. Percentiles (p50/p90/p99 over the
 * nontrivial shots) quantify the tail the paper's worst-case bound
 * caps.
 *
 * Usage: bench_astrea_latency [--shots=2000000] [--p=1e-4]
 *                             [--json-out=report.json]
 *                             [--perf-counters] [--profile-out=PATH]
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/alloc_counter.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 4000000);
    const double p = opts.getDouble("p", 1e-4);
    const uint64_t seed = opts.getUint("seed", 17);
    const std::string json_out = initBenchReport(opts);

    benchBanner("Fig 9", "Astrea decode latency (250 MHz cycle model)");
    std::printf("p=%g, %llu shots per distance\n\n", p,
                static_cast<unsigned long long>(shots));

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "astrea_latency");
        report.kv("p", p).kv("shots", shots).kv("seed", seed);
        report.endObject();  // config
        report.key("results").beginArray();
    }

    std::printf("%-4s %-12s %-18s %-10s %-10s %-10s %-12s %-10s %-8s\n",
                "d", "mean (ns)", "mean HW>2 (ns)", "p50 HW>2",
                "p90 HW>2", "p99 HW>2", "max (ns)", "max HW",
                "gave up");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        // Per-distance counter attribution: each result row carries
        // only its own run's per-stage totals.
        telemetry::resetPerfTotals();
        ExperimentResult r =
            runMemoryExperiment(ctx, astreaFactory(), shots, seed);
        std::printf("%-4u %-12.2f %-18.2f %-10.0f %-10.0f %-10.0f "
                    "%-12.0f %-10zu %llu\n",
                    d, r.latencyNs.mean(), r.latencyNontrivialNs.mean(),
                    r.latencyNontrivialHist.p50Ns(),
                    r.latencyNontrivialHist.p90Ns(),
                    r.latencyNontrivialHist.p99Ns(),
                    r.latencyNs.max(), r.hammingWeights.maxObserved(),
                    static_cast<unsigned long long>(r.gaveUps));

        if (telemetry::perfCountersEnabled() &&
            telemetry::perfCountersAvailable()) {
            std::printf("  perf (d=%u):\n", d);
            std::printf("    %-10s %-10s %-14s %-8s %-10s\n", "stage",
                        "sections", "cycles/shot", "IPC",
                        "LLC miss");
            for (size_t i = 0; i < telemetry::kPerfStageCount; i++) {
                const auto stage =
                    static_cast<telemetry::PerfStage>(i);
                const telemetry::PerfStageTotals t =
                    telemetry::perfStageTotals(stage);
                if (t.sections == 0)
                    continue;
                std::printf("    %-10s %-10llu %-14.1f %-8.2f "
                            "%-10.4f\n",
                            telemetry::perfStageName(stage),
                            static_cast<unsigned long long>(
                                t.sections),
                            t.cyclesPerShot(), t.ipc(),
                            t.llcMissRate());
            }
        }

        if (!json_out.empty()) {
            report.beginObject();
            report.kv("d", uint64_t{d});
            appendExperimentResultJson(report, r);
            if (telemetry::perfCountersEnabled()) {
                report.key("perf");
                telemetry::appendPerfJson(report);
            }
            report.endObject();
        }
    }
    std::printf("\n");
    printPaperRef("Fig 9 max latency d=3/5/7", "32 / 80 / 456 ns");
    printPaperRef("Fig 9 mean latency", "~1 ns (all), tens of ns for "
                                        "HW>2");
    std::printf("\nThe observed max tracks the largest Hamming weight "
                "the shot budget samples\n(paper used 1e9 trials); the "
                "design worst case is HW=10: 114 cycles = 456 ns.\n");

    if (!json_out.empty()) {
        report.endArray();  // results

        // Steady-state allocations per decode on the batch path
        // (decodeInto with a warmed DecodeScratch). With the counting
        // hook linked (-DASTREA_ALLOC_COUNTER=ON) this is a real
        // measurement and must be zero; without it, hook_installed
        // false tells consumers the zero means "not measured".
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);
        auto dec = makeDecoder("astrea", decoderOptionsFor(ctx));

        Rng rng(seed);
        BitVec dets, obs;
        std::vector<std::vector<uint32_t>> syndromes;
        size_t guard = 0;
        while (syndromes.size() < 256 && ++guard < 2000000) {
            ctx.sampler().sample(rng, dets, obs);
            const size_t hw = dets.popcount();
            if (hw >= 1 && hw <= 10)
                syndromes.push_back(dets.onesIndices());
        }

        DecodeResult dr;
        DecodeScratch scratch;
        for (int pass = 0; pass < 2; pass++) {
            for (const auto &s : syndromes)
                dec->decodeInto(s, dr, scratch);
        }
        const uint64_t before = allocCount();
        for (const auto &s : syndromes)
            dec->decodeInto(s, dr, scratch);
        const uint64_t total = allocCount() - before;

        report.key("allocations").beginObject();
        report.kv("hook_installed", allocHookInstalled());
        report.kv("decodes", uint64_t{syndromes.size()});
        report.kv("total", total);
        report.kv("per_decode",
                  syndromes.empty()
                      ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(syndromes.size()));
        report.endObject();

        finishBenchReport(report, json_out);
    }
    finishBenchProfile(opts);
    return 0;
}
