/**
 * @file
 * Reproduces Fig. 9: Astrea's mean, mean-over-nontrivial (HW > 2) and
 * maximum modeled latency for d = 3, 5, 7 at p = 1e-4, on the 250 MHz
 * FPGA cycle model of Sec. 5.4.
 *
 * Usage: bench_astrea_latency [--shots=2000000]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 4000000);
    const double p = opts.getDouble("p", 1e-4);
    const uint64_t seed = opts.getUint("seed", 17);

    benchBanner("Fig 9", "Astrea decode latency (250 MHz cycle model)");
    std::printf("p=%g, %llu shots per distance\n\n", p,
                static_cast<unsigned long long>(shots));

    std::printf("%-4s %-12s %-18s %-12s %-10s %-8s\n", "d",
                "mean (ns)", "mean HW>2 (ns)", "max (ns)", "max HW",
                "gave up");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        ExperimentResult r =
            runMemoryExperiment(ctx, astreaFactory(), shots, seed);
        std::printf("%-4u %-12.2f %-18.2f %-12.0f %-10zu %llu\n", d,
                    r.latencyNs.mean(), r.latencyNontrivialNs.mean(),
                    r.latencyNs.max(), r.hammingWeights.maxObserved(),
                    static_cast<unsigned long long>(r.gaveUps));
    }
    std::printf("\n");
    printPaperRef("Fig 9 max latency d=3/5/7", "32 / 80 / 456 ns");
    printPaperRef("Fig 9 mean latency", "~1 ns (all), tens of ns for "
                                        "HW>2");
    std::printf("\nThe observed max tracks the largest Hamming weight "
                "the shot budget samples\n(paper used 1e9 trials); the "
                "design worst case is HW=10: 114 cycles = 456 ns.\n");
    return 0;
}
