/**
 * @file
 * Reproduces Fig. 14: logical error rate of idealized MWPM vs Astrea-G
 * for d = 9 as the physical error rate sweeps 1e-4 .. 1e-3. The paper
 * used 1e11 trials per point; this bench relies on the semi-analytic
 * estimator (Eq. 3) with paired fault sets, plus Monte Carlo at the
 * top of the range for cross-checking.
 *
 * Usage: bench_ler_vs_p_d9 [--shots-per-k=4000] [--kmax=12]
 *        [--points=5]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 5000);
    sa.targetFailures = opts.getUint("target-failures", 15);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 50000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 12));
    sa.seed = opts.getUint("seed", 23);
    const uint64_t mc_shots = opts.getUint("shots", 30000);
    const int points = static_cast<int>(opts.getInt("points", 5));

    benchBanner("Fig 14", "LER vs p at d = 9: MWPM vs Astrea-G");
    std::printf("semi-analytic %llu shots/k, k <= %u; MC %llu shots "
                "at p = 1e-3 (paper: 1e11 trials)\n\n",
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults,
                static_cast<unsigned long long>(mc_shots));

    std::printf("%-8s %-14s %-14s %-10s\n", "p(1e-4)", "MWPM(sa)",
                "AstreaG(sa)", "ratio");
    for (int step = 1; step <= 10; step += (10 / points > 0
                                                ? 10 / points
                                                : 1)) {
        double p = 1e-4 * step;
        ExperimentConfig cfg;
        cfg.distance = 9;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto sa_r = estimateLerSemiAnalyticMulti(
            ctx, {mwpmFactory(), astreaGFactory()}, sa);
        const auto &mwpm_sa = sa_r[0];
        const auto &ag_sa = sa_r[1];
        double ratio = mwpm_sa.ler > 0 ? ag_sa.ler / mwpm_sa.ler : 0.0;
        std::printf("%-8d %-14s %-14s %-10.2f\n", step,
                    formatProb(mwpm_sa.ler).c_str(),
                    formatProb(ag_sa.ler).c_str(), ratio);
    }

    // Monte-Carlo cross-check at the highest error rate.
    ExperimentConfig cfg;
    cfg.distance = 9;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    auto mwpm_mc = runMemoryExperiment(ctx, mwpmFactory(), mc_shots,
                                       sa.seed);
    auto ag_mc =
        runMemoryExperiment(ctx, astreaGFactory(), mc_shots, sa.seed);
    std::printf("\nMC cross-check at p=1e-3: MWPM %s, Astrea-G %s\n",
                formatEstimate(mwpm_mc.logicalErrors).c_str(),
                formatEstimate(ag_mc.logicalErrors).c_str());
    printPaperRef("Fig 14", "Astrea-G within 2.7x of MWPM across "
                            "1e-4..1e-3");
    return 0;
}
