/**
 * @file
 * Decode-throughput macro-bench: batched (shot-major wide) vs
 * per-shot decoding, per matching-kernel tier.
 *
 * The shot-major wide path (AstreaDecoder::decodeBatch) buckets
 * same-Hamming-weight shots into SoA tile blocks and runs the
 * matching kernels back-to-back per bucket, amortizing dispatch,
 * telemetry and table lookups that the per-shot path pays on every
 * decode. This bench quantifies that: for d = 7 and d = 9 memory
 * experiments at p = 1e-3, it pre-samples a realistic syndrome mix,
 * then times
 *
 *  - single: a decodeInto() loop over the shots (the per-shot path);
 *  - batched: decodeBatch() over the same shots staged in fixed-size
 *    SyndromeBatches (the service worker's shape);
 *
 * once per kernel tier (scalar, AVX2, AVX-512), pinning each tier via
 * ASTREA_FORCE_KERNEL and constructing a fresh decoder so the tier is
 * latched. Unsupported tiers are reported as null in the JSON so
 * tools/bench_compare.py skips them on hosts without the instruction
 * set (decodes/sec and the batched/single ratio are gated as floors
 * against bench/baselines/decode_throughput.json).
 *
 * Usage: bench_decode_throughput [--json-out=report.json]
 *            [--shots=N] [--batch-shots=N] [--reps=N]
 *            [--distances=7,9]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "astrea/simd_kernel.hh"
#include "bench_util.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

namespace
{

/** Defeat dead-code elimination across the timed loops. */
volatile uint64_t g_sink = 0;

struct TierResult
{
    bool supported = false;
    double singleNs = 0.0;   ///< ns per shot, decodeInto loop.
    double batchedNs = 0.0;  ///< ns per shot, decodeBatch.
    double singlePerSec = 0.0;
    double batchedPerSec = 0.0;
    double batchedVsSingle = 0.0;
};

struct Workload
{
    std::unique_ptr<ExperimentContext> ctx;
    std::vector<std::vector<uint32_t>> syndromes;
    std::vector<SyndromeBatch> batches;
};

Workload
makeWorkload(uint32_t distance, size_t shots, size_t batch_shots)
{
    Workload w;
    ExperimentConfig cfg;
    cfg.distance = distance;
    cfg.physicalErrorRate = 1e-3;
    w.ctx = std::make_unique<ExperimentContext>(cfg);

    Rng rng(1000 + distance);
    BitVec dets, obs;
    w.syndromes.reserve(shots);
    for (size_t i = 0; i < shots; i++) {
        w.ctx->sampler().sample(rng, dets, obs);
        w.syndromes.push_back(dets.onesIndices());
    }
    for (size_t i = 0; i < shots; i += batch_shots) {
        w.batches.emplace_back();
        for (size_t j = i; j < std::min(shots, i + batch_shots); j++)
            w.batches.back().add(w.syndromes[j]);
    }
    return w;
}

bool
tierSupported(KernelKind kind)
{
    switch (kind) {
    case KernelKind::kScalar:
        return true;
    case KernelKind::kAvx2:
        return cpuHasAvx2();
    case KernelKind::kAvx512:
        return cpuHasAvx512();
    }
    return false;
}

/** Pin one kernel tier for subsequently constructed decoders. */
void
pinTier(const char *name)
{
    setenv("ASTREA_FORCE_KERNEL", name, 1);
    resetKernelDispatchForTest();
}

TierResult
runTier(const Workload &w, KernelKind kind, uint64_t reps)
{
    TierResult r;
    r.supported = tierSupported(kind);
    if (!r.supported)
        return r;
    pinTier(kernelKindName(kind));
    ASTREA_CHECK(activeKernelKind() == kind,
                 "kernel tier pin did not take");

    DecoderOptions opts = decoderOptionsFor(*w.ctx);
    const size_t shots = w.syndromes.size();
    uint64_t sink = 0;

    {
        auto dec = makeDecoder("astrea", opts);
        DecodeResult dr;
        DecodeScratch scratch;
        for (const auto &s : w.syndromes)  // Warm-up.
            dec->decodeInto(s, dr, scratch);
        const auto t0 = std::chrono::steady_clock::now();
        for (uint64_t rep = 0; rep < reps; rep++) {
            for (const auto &s : w.syndromes) {
                dec->decodeInto(s, dr, scratch);
                sink += dr.obsMask;
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        r.singleNs = ns / static_cast<double>(reps * shots);
    }

    {
        auto dec = makeDecoder("astrea", opts);
        std::vector<DecodeResult> results;
        DecodeScratch scratch;
        for (const auto &b : w.batches)  // Warm-up.
            dec->decodeBatch(b, results, scratch);
        const auto t0 = std::chrono::steady_clock::now();
        for (uint64_t rep = 0; rep < reps; rep++) {
            for (const auto &b : w.batches) {
                dec->decodeBatch(b, results, scratch);
                sink += results[0].obsMask;
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        r.batchedNs = ns / static_cast<double>(reps * shots);
    }

    g_sink = g_sink + sink;
    r.singlePerSec = r.singleNs > 0.0 ? 1e9 / r.singleNs : 0.0;
    r.batchedPerSec = r.batchedNs > 0.0 ? 1e9 / r.batchedNs : 0.0;
    r.batchedVsSingle =
        r.batchedNs > 0.0 ? r.singleNs / r.batchedNs : 0.0;
    return r;
}

void
appendTierJson(telemetry::JsonWriter &w, const char *name,
               const TierResult &r)
{
    if (!r.supported) {
        w.key(name).null();
        return;
    }
    w.key(name).beginObject();
    w.kv("single_ns", r.singleNs);
    w.kv("batched_ns", r.batchedNs);
    w.kv("single_per_sec", r.singlePerSec);
    w.kv("batched_per_sec", r.batchedPerSec);
    w.kv("batched_vs_single", r.batchedVsSingle);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::string json_out = initBenchReport(opts);

    const size_t shots = opts.getUint("shots", 8192);
    const size_t batch_shots = opts.getUint("batch-shots", 256);
    const uint64_t reps =
        std::max<uint64_t>(1, opts.getUint("reps", 20));

    benchBanner("decode_throughput",
                "batched (shot-major wide) vs per-shot decoding, per "
                "kernel tier");
    std::printf("p=1e-3 syndromes, %zu shots in batches of %zu, "
                "%llu reps\n\n",
                shots, batch_shots,
                static_cast<unsigned long long>(reps));

    // Remember any caller-pinned tier so the process env is restored.
    const char *prev_force = std::getenv("ASTREA_FORCE_KERNEL");
    const std::string prev_force_value =
        prev_force != nullptr ? prev_force : "";

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "decode_throughput");
        report.kv("p", 1e-3);
        report.kv("shots", static_cast<uint64_t>(shots));
        report.kv("batch_shots", static_cast<uint64_t>(batch_shots));
        report.kv("reps", reps);
        report.kv("simd_available", cpuHasAvx2());
        report.kv("avx512_available", cpuHasAvx512());
        report.endObject();  // config
        report.key("results").beginArray();
    }

    std::vector<uint32_t> distances;
    {
        const std::string spec = opts.getString("distances", "7,9");
        size_t pos = 0;
        while (pos < spec.size()) {
            size_t next = spec.find(',', pos);
            if (next == std::string::npos)
                next = spec.size();
            distances.push_back(static_cast<uint32_t>(
                std::stoul(spec.substr(pos, next - pos))));
            pos = next + 1;
        }
    }

    const KernelKind tiers[] = {KernelKind::kScalar, KernelKind::kAvx2,
                                KernelKind::kAvx512};
    for (uint32_t d : distances) {
        const Workload w = makeWorkload(d, shots, batch_shots);
        std::printf("d=%u (%zu detectors)\n", d, (size_t)w.ctx->gwt().size());
        std::printf("  %-8s %-12s %-12s %-14s %-14s %-10s\n", "kernel",
                    "single(ns)", "batched(ns)", "single(dec/s)",
                    "batched(dec/s)", "batch x");

        if (!json_out.empty()) {
            report.beginObject();
            report.kv("d", uint64_t{d});
            report.kv("shots", static_cast<uint64_t>(shots));
        }
        for (KernelKind kind : tiers) {
            const TierResult r = runTier(w, kind, reps);
            if (r.supported) {
                std::printf(
                    "  %-8s %-12.1f %-12.1f %-14.0f %-14.0f %-10.2f\n",
                    kernelKindName(kind), r.singleNs, r.batchedNs,
                    r.singlePerSec, r.batchedPerSec,
                    r.batchedVsSingle);
            } else {
                std::printf("  %-8s unsupported on this host\n",
                            kernelKindName(kind));
            }
            if (!json_out.empty())
                appendTierJson(report, kernelKindName(kind), r);
        }
        if (!json_out.empty())
            report.endObject();
        std::printf("\n");
    }

    // Restore the caller's kernel pin (or lack of one).
    if (prev_force != nullptr)
        setenv("ASTREA_FORCE_KERNEL", prev_force_value.c_str(), 1);
    else
        unsetenv("ASTREA_FORCE_KERNEL");
    resetKernelDispatchForTest();

    std::printf("batch x is decodes/sec batched over per-shot on the "
                "same shots; the wide\npath amortizes dispatch, "
                "telemetry and table lookups across SoA buckets.\n");

    if (!json_out.empty()) {
        report.endArray();  // results
        finishBenchReport(report, json_out);
    }
    finishBenchProfile(opts);
    return 0;
}
