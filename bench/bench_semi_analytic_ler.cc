/**
 * @file
 * Reproduces Appendix Table 9: semi-analytically estimated logical
 * error rates of MWPM and Astrea-G at p = 1e-4 for d = 7, 9, 11 —
 * exactly the estimator the paper's appendix defines (Eq. 3).
 *
 * Usage: bench_semi_analytic_ler [--shots-per-k=5000] [--kmax=12]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 20);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 50000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 12));
    sa.seed = opts.getUint("seed", 37);
    const double p = opts.getDouble("p", 1e-4);

    benchBanner("Table 9 (appendix)",
                "semi-analytic LER at p = 1e-4, d = 7/9/11");
    std::printf("%llu shots per fault count, k <= %u\n\n",
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    std::printf("%-6s %-14s %-14s %-8s\n", "d", "MWPM", "Astrea-G",
                "ratio");
    for (uint32_t d : {7u, 9u, 11u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto r = estimateLerSemiAnalyticMulti(
            ctx, {mwpmFactory(), astreaGFactory()}, sa);
        const auto &mwpm = r[0];
        const auto &ag = r[1];
        double ratio = mwpm.ler > 0 ? ag.ler / mwpm.ler : 0.0;
        std::printf("%-6u %-14s %-14s %-8.1f\n", d,
                    formatProb(mwpm.ler).c_str(),
                    formatProb(ag.ler).c_str(), ratio);

        // Per-k failure probabilities, the appendix's raw data.
        std::printf("       Pf(k), MWPM:    ");
        for (uint32_t k = 1; k <= sa.maxFaults; k++)
            std::printf("%8.1e", mwpm.failureProb[k]);
        std::printf("\n       Pf(k), AstreaG: ");
        for (uint32_t k = 1; k <= sa.maxFaults; k++)
            std::printf("%8.1e", ag.failureProb[k]);
        std::printf("\n");
    }
    std::printf("\n");
    printPaperRef("Table 9 MWPM", "4.6e-10 / 1.2e-11 / 1.7e-14 at "
                                  "d=7/9/11");
    printPaperRef("Table 9 Astrea-G", "equal at d=7/9; ~17x worse at "
                                      "d=11");
    return 0;
}
