/**
 * @file
 * Reproduces Fig. 1(d) / Fig. 10(a): the distribution of pair weights
 * in the Global Weight Table for d = 7, p = 1e-3, colored into the
 * paper's regions (usable / marginal / filtered) around the default
 * weight threshold Wth = 7.
 *
 * Usage: bench_weight_distribution [--distance=7] [--p=1e-3]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint32_t d = static_cast<uint32_t>(opts.getUint("distance", 7));
    const double p = opts.getDouble("p", 1e-3);

    benchBanner("Fig 1(d) / Fig 10(a)",
                "GWT pair-weight distribution");
    std::printf("d=%u, p=%g\n\n", d, p);

    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);
    const auto &gwt = ctx.gwt();

    // Histogram all off-diagonal effective pair weights plus the
    // boundary weights, in whole decades.
    Histogram hist(32);
    for (uint32_t i = 0; i < gwt.size(); i++) {
        for (uint32_t j = i; j < gwt.size(); j++) {
            WeightSum w = (i == j)
                              ? gwt.pairWeight(i, i)
                              : gwt.effectiveWeight(i, j);
            hist.add(static_cast<size_t>(w / kWeightScale));
        }
    }

    std::printf("%-10s %-12s %-10s %s\n", "weight", "frequency",
                "region", "histogram");
    size_t max_w = hist.maxObserved();
    for (size_t w = 0; w <= max_w; w++) {
        double f = hist.frequency(w);
        const char *region = (w < 7) ? "usable"
                             : (w < 9) ? "marginal"
                                       : "filtered";
        int bars = static_cast<int>(f * 200.0);
        std::printf("%-10zu %-12.4f %-10s ", w, f, region);
        for (int b = 0; b < bars && b < 60; b++)
            std::printf("#");
        std::printf("\n");
    }

    double usable = 0, marginal = 0, filtered = 0;
    for (size_t w = 0; w <= max_w; w++) {
        double f = hist.frequency(w);
        if (w < 7)
            usable += f;
        else if (w < 9)
            marginal += f;
        else
            filtered += f;
    }
    std::printf("\nregion mass: usable=%.2f marginal=%.2f "
                "filtered=%.2f\n",
                usable, marginal, filtered);
    printPaperRef("Fig 10(a) regions (d=7, p=1e-3)",
                  "~28% / ~27% / ~45%");
    return 0;
}
