/**
 * @file
 * Reproduces Fig. 13: Astrea-G's logical error rate relative to
 * idealized MWPM as the weight threshold Wth sweeps 4 .. 8 decades at
 * d = 7, p = 1e-3. Estimated semi-analytically with identical fault
 * sets per Wth so the ratios are paired.
 *
 * Usage: bench_wth_sweep [--shots-per-k=10000] [--kmax=10]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 20);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 50000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 10));
    sa.seed = opts.getUint("seed", 29);

    benchBanner("Fig 13", "Astrea-G LER vs weight threshold (d=7, "
                          "p=1e-3)");
    std::printf("semi-analytic %llu shots/k, k <= %u\n\n",
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    ExperimentConfig cfg;
    cfg.distance = 7;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);

    // One multi-decoder pass: MWPM plus every threshold, all decoding
    // the same injected fault sets, so the ratios are exactly paired.
    std::vector<double> thresholds;
    std::vector<DecoderFactory> factories{mwpmFactory()};
    for (double wth = 4.0; wth <= 8.01; wth += 0.5) {
        thresholds.push_back(wth);
        AstreaGConfig agc;
        agc.weightThresholdDecades = wth;
        factories.push_back(astreaGFactory(agc));
    }
    auto r = estimateLerSemiAnalyticMulti(ctx, factories, sa);

    std::printf("idealized MWPM LER: %s\n\n",
                formatProb(r[0].ler).c_str());
    std::printf("%-8s %-14s %-14s\n", "Wth", "Astrea-G LER",
                "relative LER");
    for (size_t i = 0; i < thresholds.size(); i++) {
        double rel = r[0].ler > 0 ? r[i + 1].ler / r[0].ler : 0.0;
        std::printf("%-8.1f %-14s %-14.2f\n", thresholds[i],
                    formatProb(r[i + 1].ler).c_str(), rel);
    }
    std::printf("\n");
    printPaperRef("Fig 13", "relative LER ~1.7x at Wth=4, approaching "
                            "1.0x by Wth=7-8");
    return 0;
}
