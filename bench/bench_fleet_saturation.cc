/**
 * @file
 * Fleet saturation macro-bench: sharded batch-coalesced TCP ingest vs
 * a synchronous per-shot round trip.
 *
 * Sets up a real DecodeFleet + FleetServer on loopback, then drives it
 * with in-process FleetClients: M logical streams multiplexed over a
 * few connections, each stream sending K shots of pre-sampled d = 5
 * p = 1e-3 syndromes with a bounded in-flight window. Each (streams,
 * shards) case reports sustained shots/sec and the client-observed
 * ingest-to-verdict latency distribution (send-staged to verdict-read,
 * so coalescing delay is included — this is what a control system
 * would see).
 *
 * The baseline is the same server shape a naive service would run:
 * one stream, one shard, maxBatch 1, and one shot in flight at a time
 * (send, flush, wait for the verdict). fleet_vs_single is the
 * headline: how much the sharded, coalesced, windowed path beats the
 * synchronous per-shot path on the same machine. shots/sec and the
 * ratio are gated as floors against
 * bench/baselines/fleet_saturation.json by tools/bench_compare.py.
 *
 * Usage: bench_fleet_saturation [--json-out=report.json]
 *            [--cases=64x1,256x2,1024x4] [--shots-per-stream=N]
 *            [--baseline-shots=N] [--clients=N] [--window=N]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "decoders/registry.hh"
#include "harness/fleet.hh"
#include "harness/memory_experiment.hh"
#include "net/fleet_client.hh"
#include "net/fleet_server.hh"

using namespace astrea;

namespace
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct CaseSpec
{
    uint32_t streams = 0;
    unsigned shards = 0;
};

struct CaseResult
{
    uint64_t sent = 0;
    uint64_t decoded = 0;
    uint64_t shed = 0;
    uint64_t gaveUp = 0;
    double elapsedSec = 0.0;
    double shotsPerSec = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
};

double
percentile(std::vector<uint64_t> &v, double q)
{
    if (v.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    std::nth_element(v.begin(), v.begin() + idx, v.end());
    return static_cast<double>(v[idx]);
}

/** Pre-sampled defect lists every client cycles through. */
std::vector<std::vector<uint32_t>>
sampleSyndromes(const ExperimentContext &ctx, size_t count)
{
    Rng rng(2026);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> pool;
    pool.reserve(count);
    size_t guard = 0;
    while (pool.size() < count && ++guard < 10000000) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() <= 10)  // Stay in Astrea's range.
            pool.push_back(dets.onesIndices());
    }
    ASTREA_CHECK(pool.size() == count, "syndrome sampling starved");
    return pool;
}

/**
 * One client connection: drives `streams` logical streams (ids
 * [first, first+streams)) for `shots` shots each with a bounded
 * in-flight window, recording per-shot send -> verdict latency.
 */
struct ClientStats
{
    uint64_t decoded = 0;
    uint64_t shed = 0;
    uint64_t gaveUp = 0;
    std::vector<uint64_t> latencies;
    bool ok = true;
};

void
runClient(uint16_t port, uint32_t first_stream, uint32_t streams,
          uint32_t shots, size_t window, uint8_t priority,
          const std::vector<std::vector<uint32_t>> &pool,
          ClientStats &stats)
{
    net::FleetClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, &error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        stats.ok = false;
        return;
    }

    const uint64_t total = uint64_t{streams} * shots;
    std::vector<uint64_t> send_ns(total, 0);
    stats.latencies.reserve(total);

    std::atomic<uint64_t> received{0};
    ClientStats *st = &stats;
    std::thread reader([&client, &send_ns, &received, st, total,
                        first_stream, shots] {
        net::FleetClientVerdict v;
        while (received.load(std::memory_order_relaxed) < total &&
               client.readVerdict(v)) {
            const uint64_t idx =
                uint64_t{v.streamId - first_stream} * shots + v.seq;
            if (v.shed) {
                st->shed++;
            } else if (v.error) {
                st->shed++;
            } else {
                st->decoded++;
                if (v.gaveUp)
                    st->gaveUp++;
                st->latencies.push_back(nowNs() - send_ns[idx]);
            }
            received.fetch_add(1, std::memory_order_relaxed);
        }
    });

    uint64_t sent = 0;
    size_t pool_pos = first_stream % pool.size();
    for (uint32_t q = 0; q < shots && stats.ok; q++) {
        for (uint32_t s = 0; s < streams; s++) {
            while (sent - received.load(std::memory_order_relaxed) >=
                   window) {
                // Window full: push staged frames so verdicts can
                // come back, then wait for the reader to drain.
                if (!client.flush()) {
                    stats.ok = false;
                    break;
                }
                std::this_thread::yield();
            }
            if (!stats.ok)
                break;
            const auto &defects = pool[pool_pos];
            pool_pos = (pool_pos + 1) % pool.size();
            const uint64_t idx = uint64_t{s} * shots + q;
            send_ns[idx] = nowNs();
            if (!client.sendShot(first_stream + s, q, priority,
                                 defects)) {
                stats.ok = false;
                break;
            }
            sent++;
        }
        if (stats.ok && !client.flush())
            stats.ok = false;
    }
    if (stats.ok)
        stats.ok = client.flush();

    // Even on a send failure the reader stops at EOF.
    reader.join();
    client.close();
    if (received.load() != total)
        stats.ok = false;
}

CaseResult
runCase(const CaseSpec &spec,
        std::shared_ptr<const ExperimentContext> ctx,
        const std::vector<std::vector<uint32_t>> &pool,
        uint32_t shots_per_stream, unsigned num_clients,
        size_t window)
{
    FleetConfig fc;
    fc.shards = spec.shards;
    fc.ringCapacity = 8192;
    fc.maxBatch = 64;
    fc.maxDelayNs = 200 * 1000;
    DecodeFleet fleet(fc, ctx, registryFactory("astrea"));
    net::FleetServer server(fleet);
    fleet.setVerdictSink(
        [&server](const FleetVerdict &v) { server.deliver(v); });
    std::string error;
    ASTREA_CHECK(server.start("127.0.0.1", 0, &error),
                 "fleet server start failed");
    fleet.start();

    num_clients = std::max(1u, std::min(num_clients, spec.streams));
    const uint32_t per_client = spec.streams / num_clients;
    std::vector<ClientStats> stats(num_clients);
    std::vector<std::thread> clients;

    const uint64_t t0 = nowNs();
    for (unsigned c = 0; c < num_clients; c++) {
        const uint32_t first = c * per_client;
        const uint32_t count = c + 1 == num_clients
                                   ? spec.streams - first
                                   : per_client;
        clients.emplace_back([&, first, count, c] {
            runClient(server.port(), first, count, shots_per_stream,
                      window, fc.maxPriority, pool, stats[c]);
        });
    }
    for (auto &t : clients)
        t.join();
    const uint64_t t1 = nowNs();

    fleet.stop();
    server.stop();

    CaseResult r;
    std::vector<uint64_t> all_lat;
    for (const auto &s : stats) {
        ASTREA_CHECK(s.ok, "fleet bench client failed");
        r.decoded += s.decoded;
        r.shed += s.shed;
        r.gaveUp += s.gaveUp;
        all_lat.insert(all_lat.end(), s.latencies.begin(),
                       s.latencies.end());
    }
    r.sent = uint64_t{spec.streams} * shots_per_stream;
    r.elapsedSec = static_cast<double>(t1 - t0) / 1e9;
    r.shotsPerSec = r.elapsedSec > 0.0
                        ? static_cast<double>(r.decoded) / r.elapsedSec
                        : 0.0;
    r.p50Ns = percentile(all_lat, 0.50);
    r.p99Ns = percentile(all_lat, 0.99);
    return r;
}

/** Synchronous per-shot baseline: one stream, one shot in flight. */
double
runSingleBaseline(std::shared_ptr<const ExperimentContext> ctx,
                  const std::vector<std::vector<uint32_t>> &pool,
                  uint32_t shots)
{
    FleetConfig fc;
    fc.shards = 1;
    fc.maxBatch = 1;
    fc.maxDelayNs = 0;  // Decode each shot the moment it arrives.
    DecodeFleet fleet(fc, ctx, registryFactory("astrea"));
    net::FleetServer server(fleet);
    fleet.setVerdictSink(
        [&server](const FleetVerdict &v) { server.deliver(v); });
    std::string error;
    ASTREA_CHECK(server.start("127.0.0.1", 0, &error),
                 "baseline server start failed");
    fleet.start();

    net::FleetClient client;
    ASTREA_CHECK(client.connect("127.0.0.1", server.port(), &error),
                 "baseline connect failed");

    net::FleetClientVerdict v;
    // Warm-up round trips settle buffers and the decoder.
    for (uint32_t q = 0; q < 64; q++) {
        client.sendShot(0, q, fc.maxPriority, pool[q % pool.size()]);
        client.flush();
        client.readVerdict(v);
    }
    const uint64_t t0 = nowNs();
    for (uint32_t q = 0; q < shots; q++) {
        client.sendShot(0, q, fc.maxPriority, pool[q % pool.size()]);
        client.flush();
        ASTREA_CHECK(client.readVerdict(v), "baseline verdict lost");
    }
    const uint64_t t1 = nowNs();

    client.close();
    fleet.stop();
    server.stop();
    return static_cast<double>(shots) /
           (static_cast<double>(t1 - t0) / 1e9);
}

std::vector<CaseSpec>
parseCases(const std::string &spec)
{
    std::vector<CaseSpec> cases;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t next = spec.find(',', pos);
        if (next == std::string::npos)
            next = spec.size();
        const std::string item = spec.substr(pos, next - pos);
        const size_t x = item.find('x');
        ASTREA_CHECK(x != std::string::npos,
                     "bad --cases entry (want STREAMSxSHARDS)");
        CaseSpec c;
        c.streams =
            static_cast<uint32_t>(std::stoul(item.substr(0, x)));
        c.shards =
            static_cast<unsigned>(std::stoul(item.substr(x + 1)));
        cases.push_back(c);
        pos = next + 1;
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::string json_out = initBenchReport(opts);

    const std::string cases_spec =
        opts.getString("cases", "64x1,256x2,1024x4");
    const uint32_t shots_per_stream = static_cast<uint32_t>(
        std::max<uint64_t>(1, opts.getUint("shots-per-stream", 48)));
    const uint32_t baseline_shots = static_cast<uint32_t>(
        std::max<uint64_t>(64, opts.getUint("baseline-shots", 2000)));
    const unsigned num_clients =
        static_cast<unsigned>(opts.getUint("clients", 4));
    const size_t window = static_cast<size_t>(
        std::max<uint64_t>(16, opts.getUint("window", 512)));

    benchBanner("fleet_saturation",
                "sharded batch-coalesced TCP ingest vs synchronous "
                "per-shot round trips");

    ExperimentConfig ecfg;
    ecfg.distance = 5;
    ecfg.physicalErrorRate = 1e-3;
    auto ctx = std::make_shared<const ExperimentContext>(ecfg);
    const auto pool = sampleSyndromes(*ctx, 4096);

    std::printf("d=5 p=1e-3, %u shots/stream, %u client "
                "connection(s), window %zu\n\n",
                shots_per_stream, num_clients, window);

    const double single_per_sec =
        runSingleBaseline(ctx, pool, baseline_shots);
    std::printf("baseline (1 stream, sync per-shot RPC): %.0f "
                "shots/sec\n\n",
                single_per_sec);

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "fleet_saturation");
        report.kv("d", uint64_t{5});
        report.kv("p", 1e-3);
        report.kv("shots_per_stream", uint64_t{shots_per_stream});
        report.kv("baseline_shots", uint64_t{baseline_shots});
        report.kv("clients", uint64_t{num_clients});
        report.kv("window", static_cast<uint64_t>(window));
        report.endObject();  // config
        report.key("results").beginArray();
    }

    std::printf("  %-10s %-7s %-10s %-9s %-12s %-11s %-11s %-9s\n",
                "case", "shards", "decoded", "shed", "shots/sec",
                "p50(us)", "p99(us)", "vs sync");
    for (const CaseSpec &spec : parseCases(cases_spec)) {
        const CaseResult r = runCase(spec, ctx, pool,
                                     shots_per_stream, num_clients,
                                     window);
        const double ratio = single_per_sec > 0.0
                                 ? r.shotsPerSec / single_per_sec
                                 : 0.0;
        char case_name[32];
        std::snprintf(case_name, sizeof(case_name), "%ux%u",
                      spec.streams, spec.shards);
        std::printf("  %-10s %-7u %-10llu %-9llu %-12.0f %-11.1f "
                    "%-11.1f %-9.2f\n",
                    case_name, spec.shards,
                    static_cast<unsigned long long>(r.decoded),
                    static_cast<unsigned long long>(r.shed),
                    r.shotsPerSec, r.p50Ns / 1000.0, r.p99Ns / 1000.0,
                    ratio);

        if (!json_out.empty()) {
            report.beginObject();
            report.kv("case", std::string(case_name));
            report.kv("streams", uint64_t{spec.streams});
            report.kv("shards", uint64_t{spec.shards});
            report.kv("sent", r.sent);
            report.kv("decoded", r.decoded);
            report.kv("shed", r.shed);
            report.kv("gave_ups", r.gaveUp);
            report.kv("elapsed_sec", r.elapsedSec);
            report.kv("shots_per_sec", r.shotsPerSec);
            report.kv("p50_ingest_ns", r.p50Ns);
            report.kv("p99_ingest_ns", r.p99Ns);
            report.kv("single_per_sec", single_per_sec);
            report.kv("fleet_vs_single", ratio);
            report.endObject();
        }
    }

    std::printf("\nvs sync is decoded shots/sec over the synchronous "
                "per-shot baseline on the\nsame loopback: sharding, "
                "windowed streams and batch coalescing amortize\n"
                "round trips and dispatch that the naive service pays "
                "per shot.\n");

    if (!json_out.empty()) {
        report.endArray();  // results
        finishBenchReport(report, json_out);
    }
    finishBenchProfile(opts);
    return 0;
}
