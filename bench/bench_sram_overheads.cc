/**
 * @file
 * Reproduces Table 6: Astrea-G's SRAM overheads for d = 7 and d = 9,
 * computed from the data-structure dimensions of the implementation
 * (the GWT sizes follow exactly; the small structures are first-order
 * provisioning estimates — see DESIGN.md on the synthesis
 * substitution).
 *
 * Usage: bench_sram_overheads
 */

#include <cstdio>

#include "astrea/resource_model.hh"
#include "bench_util.hh"

using namespace astrea;

namespace
{

void
printRow(const char *label, size_t d7, size_t d9)
{
    auto fmt = [](size_t bytes) {
        char buf[32];
        if (bytes >= 1024)
            std::snprintf(buf, sizeof(buf), "%.1fKB",
                          static_cast<double>(bytes) / 1024.0);
        else
            std::snprintf(buf, sizeof(buf), "%zuB", bytes);
        return std::string(buf);
    };
    std::printf("%-28s %-10s %-10s\n", label, fmt(d7).c_str(),
                fmt(d9).c_str());
}

} // namespace

int
main(int, char **)
{
    benchBanner("Table 6", "SRAM overheads of Astrea-G");

    AstreaGConfig cfg;  // Paper defaults: F = 2, E = 8.
    // Provisioned maximum Hamming weights per distance (the largest
    // the pipeline is sized for at p = 1e-3).
    AstreaGSram d7 = astreaGSram(7, 16, cfg);
    AstreaGSram d9 = astreaGSram(9, 24, cfg);

    std::printf("%-28s %-10s %-10s\n", "component", "d=7", "d=9");
    printRow("Global Weight Table (GWT)", d7.gwtBytes, d9.gwtBytes);
    printRow("Local Weight Table (LWT)", d7.lwtBytes, d9.lwtBytes);
    printRow("Priority Queues", d7.priorityQueueBytes,
             d9.priorityQueueBytes);
    printRow("Pipeline Latches", d7.pipelineLatchBytes,
             d9.pipelineLatchBytes);
    printRow("MWPM Register", d7.mwpmRegisterBytes,
             d9.mwpmRegisterBytes);
    printRow("Total", d7.totalBytes(), d9.totalBytes());

    std::printf("\n");
    printPaperRef("Table 6 GWT", "36KB (d=7) / 156KB (d=9)");
    printPaperRef("Table 6 total", "42KB (d=7) / 164KB (d=9)");
    return 0;
}
