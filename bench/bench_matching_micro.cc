/**
 * @file
 * Microbenchmarks of the matching hot path.
 *
 * The headline section times the Astrea exhaustive candidate
 * evaluation three ways on real sampled syndromes of each Hamming
 * weight (4, 6, 8, 10):
 *
 *  - legacy: the pre-kernel hot path — walk the canonical enumerator
 *    and price every pair through Global Weight Table callbacks,
 *    recomputing the boundary-vs-direct min per probe;
 *  - scalar: LwtTile gather + the portable unrolled table kernel;
 *  - simd: LwtTile gather + the AVX2 kernel (skipped without AVX2);
 *  - avx512: LwtTile gather + the 32-rows-per-iteration AVX-512
 *    kernel (JSON columns are null on hosts without AVX-512, and
 *    tools/bench_compare.py skips them).
 *
 * Results go to stdout and, with --json-out, into a matching_micro
 * JSON report (per-HW kernel timings plus speedups over legacy) that
 * tools/bench_compare.py gates against bench/baselines/
 * matching_micro.json. ASTREA_FORCE_SCALAR=1 pins the decoders to the
 * scalar kernel; this bench always times both implementations
 * explicitly.
 *
 * The original google-benchmark suite (blossom, DP, full decoders,
 * samplers) is kept behind --gbench.
 *
 * Usage: bench_matching_micro [--json-out=report.json] [--reps=N]
 *                             [--gbench [--benchmark_filter=...]]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "astrea/hw6.hh"
#include "astrea/lwt_tile.hh"
#include "astrea/matching_tables.hh"
#include "astrea/simd_kernel.hh"
#include "bench_util.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"
#include "sim/batch_frame_sim.hh"
#include "sim/frame_sim.hh"
#include "matching/blossom.hh"
#include "matching/dp_matcher.hh"

using namespace astrea;

namespace
{

/** Shared d = 7, p = 1e-3 context (built once). */
const ExperimentContext &
benchContext()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 7;
        cfg.physicalErrorRate = 1e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

/** Pre-sampled syndromes of a fixed Hamming weight. */
std::vector<std::vector<uint32_t>>
syndromesOfWeight(size_t hw, size_t count)
{
    const auto &ctx = benchContext();
    std::vector<std::vector<uint32_t>> out;
    Rng rng(42 + hw);
    BitVec dets, obs;
    size_t guard = 0;
    while (out.size() < count && ++guard < 40000000) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() == hw)
            out.push_back(dets.onesIndices());
    }
    // Fall back to padding with the last sample if the weight is rare.
    while (!out.empty() && out.size() < count)
        out.push_back(out.back());
    return out;
}

/** Defeat dead-code elimination across the timed loops. */
volatile uint64_t g_sink = 0;

/**
 * The pre-kernel hot path: evaluate every perfect matching of one
 * syndrome's defects through per-pair GWT callbacks with the
 * boundary-vs-direct effective-weight min recomputed on every probe.
 */
uint64_t
legacyEvaluate(const GlobalWeightTable &gwt,
               const std::vector<uint32_t> &defects)
{
    const int m = static_cast<int>(defects.size());
    auto weight = [&](int i, int j) -> WeightSum {
        const uint32_t a = defects[i], b = defects[j];
        const WeightSum direct = gwt.pairWeight(a, b);
        const WeightSum via =
            addWeights(gwt.pairWeight(a, a), gwt.pairWeight(b, b));
        return direct < via ? direct : via;
    };
    WeightSum best = kInfiniteWeightSum;
    uint32_t best_row = 0, row = 0;
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        WeightSum sum = 0;
        for (auto [i, j] : pl)
            sum = addWeights(sum, weight(i, j));
        if (sum < best) {
            best = sum;
            best_row = row;
        }
        row++;
    });
    return best + best_row;
}

/** Tile gather + one flat kernel pass with the requested kernel. */
uint64_t
kernelEvaluate(const GlobalWeightTable &gwt,
               const std::vector<uint32_t> &defects, LwtTile &tile,
               KernelKind kind)
{
    tile.build(gwt, defects, /*effective_weights=*/true);
    const MatchingTable &table = MatchingTable::forNodes(tile.nodes());
    const KernelMatch km = matchTile16(table, tile.weights(), kind);
    return static_cast<uint64_t>(km.weight) + km.row;
}

/** Nanoseconds per call of fn over the syndrome set, with warm-up. */
template <class Fn>
double
timeNsPerCall(const std::vector<std::vector<uint32_t>> &syndromes,
              uint64_t reps, const Fn &fn)
{
    const size_t n = syndromes.size();
    uint64_t sink = 0;
    for (uint64_t i = 0; i < reps / 10 + 1; i++)
        sink += fn(syndromes[i % n]);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < reps; i++)
        sink += fn(syndromes[i % n]);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + sink;
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    return ns / static_cast<double>(reps);
}

/** One per-HW row of the kernel comparison. */
struct MicroResult
{
    int m = 0;
    uint32_t rows = 0;
    uint64_t reps = 0;
    double legacyNs = 0.0;
    double scalarNs = 0.0;
    double simdNs = 0.0;    // 0 when AVX2 is unavailable.
    double avx512Ns = 0.0;  // 0 when AVX-512 is unavailable.
};

MicroResult
runKernelMicro(size_t hw, uint64_t reps_override)
{
    const GlobalWeightTable &gwt = benchContext().gwt();
    auto syndromes = syndromesOfWeight(hw, 64);
    ASTREA_CHECK(!syndromes.empty(), "no syndromes of requested weight");

    MicroResult r;
    r.m = static_cast<int>(hw);
    r.rows = MatchingTable::forNodes(r.m).rows();

    // Scale the repetition count to the candidate count so every row
    // costs comparable (small) wall-clock.
    r.reps = reps_override != 0
                 ? reps_override
                 : std::max<uint64_t>(1000, 400000 / r.rows);

    LwtTile tile;
    tile.reserve(r.m);

    // Sanity: all three implementations must award the same weight.
    for (const auto &s : syndromes) {
        const uint64_t legacy = legacyEvaluate(gwt, s);
        const uint64_t scalar =
            kernelEvaluate(gwt, s, tile, KernelKind::kScalar);
        ASTREA_CHECK(legacy == scalar,
                     "scalar kernel disagrees with legacy evaluation");
        if (cpuHasAvx2()) {
            const uint64_t simd =
                kernelEvaluate(gwt, s, tile, KernelKind::kAvx2);
            ASTREA_CHECK(simd == scalar,
                         "AVX2 kernel disagrees with scalar kernel");
        }
        if (cpuHasAvx512()) {
            const uint64_t wide =
                kernelEvaluate(gwt, s, tile, KernelKind::kAvx512);
            ASTREA_CHECK(wide == scalar,
                         "AVX-512 kernel disagrees with scalar kernel");
        }
    }

    r.legacyNs = timeNsPerCall(
        syndromes, r.reps,
        [&](const std::vector<uint32_t> &s) {
            return legacyEvaluate(gwt, s);
        });
    r.scalarNs = timeNsPerCall(
        syndromes, r.reps,
        [&](const std::vector<uint32_t> &s) {
            return kernelEvaluate(gwt, s, tile, KernelKind::kScalar);
        });
    if (cpuHasAvx2()) {
        r.simdNs = timeNsPerCall(
            syndromes, r.reps,
            [&](const std::vector<uint32_t> &s) {
                return kernelEvaluate(gwt, s, tile,
                                      KernelKind::kAvx2);
            });
    }
    if (cpuHasAvx512()) {
        r.avx512Ns = timeNsPerCall(
            syndromes, r.reps,
            [&](const std::vector<uint32_t> &s) {
                return kernelEvaluate(gwt, s, tile,
                                      KernelKind::kAvx512);
            });
    }
    return r;
}

void
runKernelSection(const Options &opts, const std::string &json_out)
{
    benchBanner("matching_micro",
                "candidate-evaluation kernels vs the legacy "
                "enumerator hot path");
    std::printf("d=7, p=1e-3 syndromes; active decoder kernel: %s%s%s\n\n",
                kernelKindName(activeKernelKind()),
                cpuHasAvx2() ? "" : " (no AVX2 on this CPU)",
                cpuHasAvx512() ? "" : " (no AVX-512 on this CPU)");

    const uint64_t reps_override = opts.getUint("reps", 0);

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "matching_micro");
        report.kv("d", uint64_t{7});
        report.kv("p", 1e-3);
        report.kv("simd_available", cpuHasAvx2());
        report.kv("avx512_available", cpuHasAvx512());
        report.kv("active_kernel",
                  std::string(kernelKindName(activeKernelKind())));
        report.endObject();  // config
        report.key("results").beginArray();
    }

    std::printf("%-4s %-6s %-8s %-12s %-12s %-12s %-12s %-9s %-9s "
                "%-9s\n",
                "m", "rows", "reps", "legacy (ns)", "scalar (ns)",
                "simd (ns)", "avx512 (ns)", "x scalar", "x simd",
                "x avx512");
    for (size_t hw : {4u, 6u, 8u, 10u}) {
        const MicroResult r = runKernelMicro(hw, reps_override);
        const double speedup_scalar =
            r.scalarNs > 0.0 ? r.legacyNs / r.scalarNs : 0.0;
        const double speedup_simd =
            r.simdNs > 0.0 ? r.legacyNs / r.simdNs : 0.0;
        const double speedup_avx512 =
            r.avx512Ns > 0.0 ? r.legacyNs / r.avx512Ns : 0.0;
        std::printf("%-4d %-6u %-8llu %-12.1f %-12.1f %-12.1f %-12.1f "
                    "%-9.2f %-9.2f %-9.2f\n",
                    r.m, r.rows,
                    static_cast<unsigned long long>(r.reps), r.legacyNs,
                    r.scalarNs, r.simdNs, r.avx512Ns, speedup_scalar,
                    speedup_simd, speedup_avx512);

        if (!json_out.empty()) {
            report.beginObject();
            report.kv("m", static_cast<uint64_t>(r.m));
            report.kv("rows", uint64_t{r.rows});
            report.kv("reps", r.reps);
            report.kv("legacy_ns", r.legacyNs);
            report.kv("scalar_ns", r.scalarNs);
            if (cpuHasAvx2())
                report.kv("simd_ns", r.simdNs);
            report.kv("speedup_scalar", speedup_scalar);
            if (cpuHasAvx2())
                report.kv("speedup_simd", speedup_simd);
            // Optional kernel columns stay present-but-null on hosts
            // without AVX-512 so baseline comparisons can tell "not
            // measured here" from "regressed to nothing".
            if (cpuHasAvx512()) {
                report.kv("avx512_ns", r.avx512Ns);
                report.kv("speedup_avx512", speedup_avx512);
            } else {
                report.key("avx512_ns").null();
                report.key("speedup_avx512").null();
            }
            report.endObject();
        }
    }
    std::printf("\nspeedups are per-decode (tile gather included) over "
                "the callback-driven\nenumerator; the HW-10 row is the "
                "paper's worst-case exhaustive search.\n");

    if (!json_out.empty()) {
        report.endArray();  // results
        finishBenchReport(report, json_out);
    }
}

void
BM_BlossomCompleteGraph(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n));
    for (int i = 0; i < n; i++)
        for (int j = i + 1; j < n; j++)
            w[i][j] = w[j][i] =
                static_cast<int64_t>(rng.uniformInt(1000));
    for (auto _ : state) {
        auto mate = minWeightPerfectMatching(
            n, [&](int i, int j) { return w[i][j]; });
        benchmark::DoNotOptimize(mate);
    }
}
BENCHMARK(BM_BlossomCompleteGraph)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_DpMatcher(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(9);
    std::vector<std::vector<double>> w(n, std::vector<double>(n));
    std::vector<double> wb(n);
    for (int i = 0; i < n; i++) {
        wb[i] = static_cast<double>(rng.uniformInt(100));
        for (int j = i + 1; j < n; j++)
            w[i][j] = w[j][i] = static_cast<double>(rng.uniformInt(100));
    }
    for (auto _ : state) {
        auto sol = dpMatchWithBoundary(
            n, [&](int i, int j) { return w[i][j]; },
            [&](int i) { return wb[i]; });
        benchmark::DoNotOptimize(sol);
    }
}
BENCHMARK(BM_DpMatcher)->Arg(8)->Arg(12)->Arg(16);

void
BM_Hw6Decoder(benchmark::State &state)
{
    Hw6Decoder hw6;
    Rng rng(11);
    WeightSum w[6][6];
    for (int i = 0; i < 6; i++)
        for (int j = 0; j < 6; j++)
            w[i][j] = static_cast<WeightSum>(rng.uniformInt(200));
    PairList out;
    for (auto _ : state) {
        WeightSum best = hw6.match(
            6, [&](int i, int j) { return w[i][j]; }, out);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_Hw6Decoder);

void
BM_AstreaDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 64);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("astrea", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AstreaDecode)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_AstreaGDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 16);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("astrea-g", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AstreaGDecode)->Arg(12)->Arg(14);

void
BM_MwpmDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 32);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec = makeDecoder("mwpm", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MwpmDecode)->Arg(4)->Arg(8)->Arg(12);

void
BM_UnionFindDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 32);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("union-find", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_UnionFindDecode)->Arg(4)->Arg(8)->Arg(12);

void
BM_DemSamplerShot(benchmark::State &state)
{
    const auto &ctx = benchContext();
    Rng rng(13);
    BitVec dets, obs;
    for (auto _ : state) {
        ctx.sampler().sample(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
}
BENCHMARK(BM_DemSamplerShot);

void
BM_ScalarFrameSimShot(benchmark::State &state)
{
    const auto &ctx = benchContext();
    FrameSimulator sim(ctx.circuit());
    Rng rng(15);
    BitVec dets, obs;
    for (auto _ : state) {
        sim.sample(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
}
BENCHMARK(BM_ScalarFrameSimShot);

void
BM_BatchFrameSim64Shots(benchmark::State &state)
{
    const auto &ctx = benchContext();
    BatchFrameSimulator sim(ctx.circuit());
    Rng rng(17);
    std::vector<uint64_t> dets, obs;
    for (auto _ : state) {
        sim.sampleBatch(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchFrameSim64Shots);

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::string json_out = initBenchReport(opts);

    runKernelSection(opts, json_out);

    if (opts.has("gbench")) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return 0;
}
