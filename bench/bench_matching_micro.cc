/**
 * @file
 * google-benchmark microbenchmarks of the matching and decoding hot
 * paths: blossom MWPM, the bitmask DP, the HW6Decoder, Astrea,
 * Astrea-G, Union-Find, and the sparse DEM sampler. These support the
 * latency arguments behind Figs. 3 and 9: software matching costs
 * microseconds-to-milliseconds per syndrome while Astrea's model is a
 * handful of table lookups and adds.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "astrea/hw6.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"
#include "sim/batch_frame_sim.hh"
#include "sim/frame_sim.hh"
#include "matching/blossom.hh"
#include "matching/dp_matcher.hh"

using namespace astrea;

namespace
{

/** Shared d = 7, p = 1e-3 context (built once). */
const ExperimentContext &
benchContext()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 7;
        cfg.physicalErrorRate = 1e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

/** Pre-sampled syndromes of a fixed Hamming weight. */
std::vector<std::vector<uint32_t>>
syndromesOfWeight(size_t hw, size_t count)
{
    const auto &ctx = benchContext();
    std::vector<std::vector<uint32_t>> out;
    Rng rng(42 + hw);
    BitVec dets, obs;
    size_t guard = 0;
    while (out.size() < count && ++guard < 40000000) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() == hw)
            out.push_back(dets.onesIndices());
    }
    // Fall back to padding with the last sample if the weight is rare.
    while (!out.empty() && out.size() < count)
        out.push_back(out.back());
    return out;
}

void
BM_BlossomCompleteGraph(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n));
    for (int i = 0; i < n; i++)
        for (int j = i + 1; j < n; j++)
            w[i][j] = w[j][i] =
                static_cast<int64_t>(rng.uniformInt(1000));
    for (auto _ : state) {
        auto mate = minWeightPerfectMatching(
            n, [&](int i, int j) { return w[i][j]; });
        benchmark::DoNotOptimize(mate);
    }
}
BENCHMARK(BM_BlossomCompleteGraph)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_DpMatcher(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(9);
    std::vector<std::vector<double>> w(n, std::vector<double>(n));
    std::vector<double> wb(n);
    for (int i = 0; i < n; i++) {
        wb[i] = static_cast<double>(rng.uniformInt(100));
        for (int j = i + 1; j < n; j++)
            w[i][j] = w[j][i] = static_cast<double>(rng.uniformInt(100));
    }
    for (auto _ : state) {
        auto sol = dpMatchWithBoundary(
            n, [&](int i, int j) { return w[i][j]; },
            [&](int i) { return wb[i]; });
        benchmark::DoNotOptimize(sol);
    }
}
BENCHMARK(BM_DpMatcher)->Arg(8)->Arg(12)->Arg(16);

void
BM_Hw6Decoder(benchmark::State &state)
{
    Hw6Decoder hw6;
    Rng rng(11);
    WeightSum w[6][6];
    for (int i = 0; i < 6; i++)
        for (int j = 0; j < 6; j++)
            w[i][j] = static_cast<WeightSum>(rng.uniformInt(200));
    PairList out;
    for (auto _ : state) {
        WeightSum best = hw6.match(
            6, [&](int i, int j) { return w[i][j]; }, out);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_Hw6Decoder);

void
BM_AstreaDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 64);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("astrea", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AstreaDecode)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_AstreaGDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 16);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("astrea-g", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AstreaGDecode)->Arg(12)->Arg(14);

void
BM_MwpmDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 32);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec = makeDecoder("mwpm", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MwpmDecode)->Arg(4)->Arg(8)->Arg(12);

void
BM_UnionFindDecode(benchmark::State &state)
{
    const size_t hw = static_cast<size_t>(state.range(0));
    auto syndromes = syndromesOfWeight(hw, 32);
    if (syndromes.empty()) {
        state.SkipWithError("no syndromes of requested weight");
        return;
    }
    auto dec =
        makeDecoder("union-find", decoderOptionsFor(benchContext()));
    DecodeResult r;
    DecodeScratch scratch;
    size_t i = 0;
    for (auto _ : state) {
        dec->decodeInto(syndromes[i++ % syndromes.size()], r, scratch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_UnionFindDecode)->Arg(4)->Arg(8)->Arg(12);

void
BM_DemSamplerShot(benchmark::State &state)
{
    const auto &ctx = benchContext();
    Rng rng(13);
    BitVec dets, obs;
    for (auto _ : state) {
        ctx.sampler().sample(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
}
BENCHMARK(BM_DemSamplerShot);

void
BM_ScalarFrameSimShot(benchmark::State &state)
{
    const auto &ctx = benchContext();
    FrameSimulator sim(ctx.circuit());
    Rng rng(15);
    BitVec dets, obs;
    for (auto _ : state) {
        sim.sample(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
}
BENCHMARK(BM_ScalarFrameSimShot);

void
BM_BatchFrameSim64Shots(benchmark::State &state)
{
    const auto &ctx = benchContext();
    BatchFrameSimulator sim(ctx.circuit());
    Rng rng(17);
    std::vector<uint64_t> dets, obs;
    for (auto _ : state) {
        sim.sampleBatch(rng, dets, obs);
        benchmark::DoNotOptimize(dets);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchFrameSim64Shots);

} // namespace

BENCHMARK_MAIN();
