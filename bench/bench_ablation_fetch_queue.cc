/**
 * @file
 * Ablation: Astrea-G's fetch width (F) and priority-queue capacity (E).
 *
 * The paper states (Sec. 7.1) that F = 2 and E = 8 "are sufficient"
 * and that larger values improve accuracy at more logic cost. This
 * bench sweeps the design space at a regime where the pipeline is
 * stressed (d = 7, p = 2e-3: ~3% of shots exceed Hamming weight 10)
 * and reports paired LERs against idealized MWPM.
 *
 * Usage: bench_ablation_fetch_queue [--shots-per-k=10000] [--p=2e-3]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 30);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 100000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 12));
    sa.seed = opts.getUint("seed", 43);
    const double p = opts.getDouble("p", 2e-3);
    const uint32_t d = static_cast<uint32_t>(opts.getUint("distance", 7));

    benchBanner("Ablation", "Astrea-G fetch width / queue capacity");
    std::printf("d=%u, p=%g (pipeline-stressed regime), paired "
                "semi-analytic\n\n",
                d, p);

    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);

    struct Design
    {
        uint32_t f, e;
    };
    const Design designs[] = {{1, 4}, {2, 8},  {2, 16},
                              {4, 8}, {4, 16}, {8, 32}};

    std::vector<DecoderFactory> factories{mwpmFactory()};
    for (const auto &ds : designs) {
        AstreaGConfig agc;
        agc.fetchWidth = ds.f;
        agc.queueCapacity = ds.e;
        factories.push_back(astreaGFactory(agc));
    }
    // Continuation ablation: the default design without re-queuing
    // popped pre-matchings that still have candidates.
    AstreaGConfig no_cont;
    no_cont.requeueContinuations = false;
    factories.push_back(astreaGFactory(no_cont));

    auto r = estimateLerSemiAnalyticMulti(ctx, factories, sa);

    std::printf("%-18s %-14s %-10s\n", "design", "LER",
                "vs MWPM");
    std::printf("%-18s %-14s %-10s\n", "MWPM",
                formatProb(r[0].ler).c_str(), "1.00");
    for (size_t i = 0; i < std::size(designs); i++) {
        char name[32];
        std::snprintf(name, sizeof(name), "F=%u E=%u", designs[i].f,
                      designs[i].e);
        double rel = r[0].ler > 0 ? r[i + 1].ler / r[0].ler : 0.0;
        std::printf("%-18s %-14s %-10.2f\n", name,
                    formatProb(r[i + 1].ler).c_str(), rel);
    }
    {
        size_t idx = std::size(designs) + 1;
        double rel = r[0].ler > 0 ? r[idx].ler / r[0].ler : 0.0;
        std::printf("%-18s %-14s %-10.2f\n", "F=2 E=8 no-cont",
                    formatProb(r[idx].ler).c_str(), rel);
    }
    std::printf("\n(paper Sec. 7.1: F=2, E=8 suffices at p <= 1e-3; "
                "larger F/E buys accuracy\nin harsher regimes at more "
                "logic.)\n");
    return 0;
}
