/**
 * @file
 * Reproduces Fig. 10(b): candidate pairs per syndrome bit after the
 * Wth filter for a Hamming-weight-16 syndrome at d = 7, p = 1e-3, and
 * the resulting reduction of the MWPM search space (the paper quotes
 * 2,027,025 matchings before filtering vs ~2,128 after, a ~953x
 * reduction).
 *
 * Usage: bench_filter_reduction [--wth=8] [--seed=3] [--hw=16]
 */

#include <cmath>
#include <cstdio>

#include "astrea/astrea_g_decoder.hh"
#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "matching/enumerator.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const double wth = opts.getDouble("wth", 8.0);
    const uint64_t seed = opts.getUint("seed", 3);
    const uint32_t target_hw =
        static_cast<uint32_t>(opts.getUint("hw", 16));

    benchBanner("Fig 10(b)", "Wth filtering of the MWPM search space");
    std::printf("d=7, p=1e-3, target HW=%u, Wth=%.1f decades\n\n",
                target_hw, wth);

    ExperimentConfig cfg;
    cfg.distance = 7;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);

    // Sample until a syndrome of the requested Hamming weight appears.
    Rng rng(seed);
    BitVec dets, obs;
    std::vector<uint32_t> defects;
    for (int tries = 0; tries < 2000000; tries++) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() == target_hw) {
            defects = dets.onesIndices();
            break;
        }
    }
    if (defects.empty()) {
        std::printf("no HW=%u syndrome sampled; try another seed\n",
                    target_hw);
        return 1;
    }

    AstreaGConfig agc;
    agc.weightThresholdDecades = wth;
    AstreaGDecoder dec(ctx.gwt(), agc);
    auto counts = dec.survivingPairCounts(defects);

    std::printf("%-14s %-12s %-12s\n", "syndrome bit", "pairs before",
                "pairs after");
    uint64_t total_after = 0;
    for (size_t i = 0; i < defects.size(); i++) {
        std::printf("%-14zu %-12zu %-12u\n", i, defects.size() - 1,
                    counts[i]);
        total_after += counts[i];
    }

    uint64_t before_pairs = defects.size() * (defects.size() - 1);
    double reduction =
        100.0 * (1.0 - static_cast<double>(total_after) /
                           static_cast<double>(before_pairs));
    std::printf("\npair count: %llu -> %llu (%.0f%% fewer)\n",
                static_cast<unsigned long long>(before_pairs),
                static_cast<unsigned long long>(total_after), reduction);
    printPaperRef("Fig 10(b) pair reduction", "~58%");

    // Search-space estimate: matchings of a graph with average degree
    // k shrink roughly like (k / (w-1))^(w/2) relative to the complete
    // graph's (w-1)!!.
    uint64_t full = perfectMatchingCount(
        static_cast<int>(defects.size() + (defects.size() % 2)));
    double avg_deg = static_cast<double>(total_after) /
                     static_cast<double>(defects.size());
    double est = static_cast<double>(full) *
                 std::pow(avg_deg / static_cast<double>(defects.size() -
                                                        1),
                          static_cast<double>(defects.size()) / 2.0);
    std::printf("matchings: %llu (unfiltered) -> ~%.0f (estimated "
                "after filter)\n",
                static_cast<unsigned long long>(full), est);
    printPaperRef("Fig 10(b) search space", "2,027,025 -> ~2,128");
    return 0;
}
