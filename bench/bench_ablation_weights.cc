/**
 * @file
 * Ablation: Astrea's weight-handling design choices.
 *
 * (a) 8-bit weight quantization (Sec. 5.1): the FPGA stores each GWT
 *     entry in one byte. How much accuracy does that cost relative to
 *     the unquantized weights the paper's software model used?
 * (b) Effective pair weights (DESIGN.md): pairs may resolve through
 *     the boundary at weight w_iB + w_jB. Disabling this restriction
 *     breaks the equivalence between perfect-matching search and true
 *     MWPM; the bench quantifies the LER cost.
 *
 * Both comparisons use the paired semi-analytic estimator, so the
 * ratios are free of cross-column sampling noise.
 *
 * Usage: bench_ablation_weights [--shots-per-k=10000] [--kmax=8]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 25);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 200000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 8));
    sa.seed = opts.getUint("seed", 41);
    const double p = opts.getDouble("p", 1e-3);

    benchBanner("Ablation", "Astrea weight quantization and effective "
                            "pair weights");
    std::printf("p=%g, adaptive semi-analytic, k <= %u\n\n", p,
                sa.maxFaults);

    AstreaConfig exact_cfg;
    exact_cfg.quantizedWeights = false;
    AstreaConfig no_eff_cfg;
    no_eff_cfg.useEffectiveWeights = false;

    std::printf("%-4s %-13s %-13s %-13s %-13s\n", "d", "MWPM",
                "Astrea(8bit)", "Astrea(exact)", "Astrea(no-eff)");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto r = estimateLerSemiAnalyticMulti(
            ctx,
            {mwpmFactory(), astreaFactory(), astreaFactory(exact_cfg),
             astreaFactory(no_eff_cfg)},
            sa);
        std::printf("%-4u %-13s %-13s %-13s %-13s\n", d,
                    formatProb(r[0].ler).c_str(),
                    formatProb(r[1].ler).c_str(),
                    formatProb(r[2].ler).c_str(),
                    formatProb(r[3].ler).c_str());
    }
    std::printf("\nFindings this bench documents:\n"
                " - exact-weight Astrea == MWPM below the HW-10 limit "
                "(the paper's software\n   model of Astrea);\n"
                " - 8-bit quantization costs a small factor via "
                "tie-breaks;\n"
                " - dropping effective (through-boundary) pair weights "
                "costs accuracy\n   whenever the MWPM sends several "
                "defects to the boundary.\n");
    return 0;
}
