/**
 * @file
 * Reproduces Table 7: Astrea-G's relative logical error rate as the
 * syndrome-transmission bandwidth shrinks. Transmitting the 80
 * syndrome bits per round of a d = 9 code for (1000 - t) ns leaves
 * only t ns of the 1 us deadline for decoding; the bench sweeps the
 * decode budget t from 1000 ns down to 500 ns and reports the LER
 * relative to the unlimited-bandwidth case, using paired fault sets.
 *
 * Usage: bench_bandwidth [--shots-per-k=4000] [--kmax=12]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 5000);
    sa.targetFailures = opts.getUint("target-failures", 15);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 30000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 12));
    sa.seed = opts.getUint("seed", 31);
    const double p = opts.getDouble("p", 1e-3);

    benchBanner("Table 7", "syndrome bandwidth vs Astrea-G LER "
                           "(d=9, p=1e-3)");
    std::printf("semi-analytic %llu shots/k, k <= %u\n\n",
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    ExperimentConfig cfg;
    cfg.distance = 9;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);

    // One paired multi-decoder pass across every transmission time;
    // index 0 (transmit = 0) is the unlimited-bandwidth baseline.
    // The paper's rows stop at 500 ns; the extra rows beyond probe
    // where this implementation's faster-converging pipeline finally
    // feels the budget.
    const std::vector<double> transmits{0.0,   50.0,  100.0, 200.0,
                                        300.0, 400.0, 500.0, 700.0,
                                        850.0, 920.0, 960.0};
    std::vector<DecoderFactory> factories;
    for (double transmit : transmits) {
        AstreaGConfig agc;
        agc.cycleBudget = static_cast<uint64_t>(
            (1000.0 - transmit) * kFpgaClockGHz);
        factories.push_back(astreaGFactory(agc));
    }
    auto results = estimateLerSemiAnalyticMulti(ctx, factories, sa);

    std::printf("%-16s %-18s %-14s %-10s\n", "transmit (ns)",
                "bandwidth (MBps)", "LER", "relative");
    for (size_t i = 0; i < transmits.size(); i++) {
        double transmit = transmits[i];
        double rel = results[0].ler > 0
                         ? results[i].ler / results[0].ler
                         : 1.0;
        // 80 syndrome bits = 10 bytes per round, sent in `transmit` ns.
        if (transmit == 0.0) {
            std::printf("%-16s %-18s %-14s %-10.2f\n", "0", "unlimited",
                        formatProb(results[i].ler).c_str(), rel);
        } else {
            double mbps = 80.0 / (8.0 * transmit) * 1000.0;
            std::printf("%-16.0f %-18.0f %-14s %-10.2f\n", transmit,
                        mbps, formatProb(results[i].ler).c_str(), rel);
        }
    }
    std::printf("\n");
    printPaperRef("Table 7", "1.0x down to 50 MBps; 1.33x at 20 MBps "
                             "(500 ns transmit)");
    return 0;
}
