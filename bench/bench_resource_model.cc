/**
 * @file
 * Reproduces Tables 3 and 8: FPGA utilization of Astrea and Astrea-G.
 *
 * We cannot run Vivado synthesis here; the numbers are first-order
 * gate-count estimates against a ZU9EG-class Zynq UltraScale+ budget
 * (documented substitution, see DESIGN.md). The paper's
 * post-implementation results are printed alongside.
 *
 * Usage: bench_resource_model
 */

#include <cstdio>

#include "astrea/resource_model.hh"
#include "bench_util.hh"

using namespace astrea;

int
main(int, char **)
{
    benchBanner("Tables 3 and 8", "FPGA utilization (analytic model)");

    AstreaGConfig cfg;
    FpgaUtilization astrea_u = astreaUtilization(7);
    FpgaUtilization astrea_g_u = astreaGUtilization(9, 24, cfg);

    std::printf("%-12s %-8s %-8s %-8s %-10s\n", "design", "LUT%",
                "FF%", "BRAM%", "Fmax(MHz)");
    std::printf("%-12s %-8.2f %-8.2f %-8.2f %-10.0f\n", "Astrea",
                astrea_u.lutPercent, astrea_u.ffPercent,
                astrea_u.bramPercent, astrea_u.maxFreqMHz);
    std::printf("%-12s %-8.2f %-8.2f %-8.2f %-10.0f\n", "Astrea-G",
                astrea_g_u.lutPercent, astrea_g_u.ffPercent,
                astrea_g_u.bramPercent, astrea_g_u.maxFreqMHz);

    std::printf("\n");
    printPaperRef("Table 3 (Astrea)",
                  "LUT 5.57%, FF 0.86%, BRAM 9.60%, 250 MHz");
    printPaperRef("Table 8 (Astrea-G)",
                  "LUT 20.2%, FF 3.92%, BRAM 35.7%, 250 MHz");
    std::printf("\nNote: modeled, not synthesized — the latency model "
                "(cycle counts at 250 MHz)\nis taken from the paper's "
                "published implementation and verified in tests.\n");
    return 0;
}
