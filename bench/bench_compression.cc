/**
 * @file
 * Syndrome-compression study (paper Sec. 7.6, closing remark).
 *
 * Measures the lossless compression the sparse and run-length codecs
 * achieve on real sampled syndromes, and converts the mean encoded
 * sizes into the transmission bandwidth needed to leave Astrea-G its
 * decode budget — extending Table 7's bandwidth analysis with the
 * "Syndrome Compression" option the paper mentions.
 *
 * Usage: bench_compression [--shots=200000]
 */

#include <cstdio>

#include "bench_util.hh"
#include "compression/syndrome_codec.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 200000);
    const uint64_t seed = opts.getUint("seed", 59);

    benchBanner("Sec 7.6 extension", "syndrome compression");
    std::printf("%llu sampled syndrome vectors per configuration\n\n",
                static_cast<unsigned long long>(shots));

    std::printf("%-14s %-10s %-12s %-12s %-12s %-12s\n", "config",
                "raw B", "sparse B", "rle B", "sparse x", "rle x");

    struct Config
    {
        uint32_t d;
        double p;
    };
    for (const auto &[d, p] : {Config{7, 1e-3}, Config{9, 1e-3},
                               Config{7, 1e-4}}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        Rng rng(seed);
        BitVec dets, obs;
        CompressionStats sparse, rle;
        for (uint64_t s = 0; s < shots; s++) {
            ctx.sampler().sample(rng, dets, obs);
            sparse.add(
                static_cast<uint32_t>(dets.size()),
                encodeSyndrome(dets, SyndromeCodec::Sparse).size());
            rle.add(
                static_cast<uint32_t>(dets.size()),
                encodeSyndrome(dets, SyndromeCodec::RunLength).size());
        }
        char label[32];
        std::snprintf(label, sizeof(label), "d=%u p=%g", d, p);
        std::printf("%-14s %-10.1f %-12.2f %-12.2f %-12.1f %-12.1f\n",
                    label,
                    static_cast<double>(sparse.rawBytes) /
                        static_cast<double>(sparse.syndromes),
                    sparse.meanEncodedBytes(), rle.meanEncodedBytes(),
                    sparse.ratio(), rle.ratio());
    }

    // Bandwidth implication at d = 9, p = 1e-3 (Table 7's scenario):
    // sending the mean compressed syndrome within 200 ns.
    ExperimentConfig cfg;
    cfg.distance = 9;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    Rng rng(seed + 1);
    BitVec dets, obs;
    CompressionStats sparse;
    for (uint64_t s = 0; s < shots; s++) {
        ctx.sampler().sample(rng, dets, obs);
        sparse.add(static_cast<uint32_t>(dets.size()),
                   encodeSyndrome(dets, SyndromeCodec::Sparse).size());
    }
    // Uncompressed per-round payload: 80 parity bits = 10 bytes; the
    // sparse encoding above covers the full (rounds + 1)-round vector,
    // so divide by the round count for the per-round average.
    double raw_mbps_200ns = transmissionTimeNs(10.0, 1.0) / 200.0;
    double per_round_bytes = sparse.meanEncodedBytes() / 10.0;
    double comp_mbps_200ns =
        transmissionTimeNs(per_round_bytes, 1.0) / 200.0;
    std::printf("\nd=9, p=1e-3: raw 10 B/round needs %.0f MBps for a "
                "200 ns per-round transfer;\nsparse-compressed "
                "(mean %.2f B/round) needs ~%.1f MBps — compression\n"
                "relaxes Table 7's bandwidth requirement by the "
                "compression ratio.\n",
                raw_mbps_200ns, per_round_bytes, comp_mbps_200ns);
    return 0;
}
