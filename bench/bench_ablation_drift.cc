/**
 * @file
 * Ablation: non-uniform error rates and GWT re-programming (paper
 * Sec. 8.2).
 *
 * The paper argues Astrea's flexibility advantage over fixed-function
 * decoders: the GWT can be re-programmed when device error rates drift.
 * This bench quantifies that: shots are sampled from a device whose
 * per-qubit error rates are spread log-uniformly around the base rate,
 * then decoded (a) with the GWT matched to the drifted rates and
 * (b) with a stale GWT built for uniform rates. The matched table's
 * advantage grows with the spread.
 *
 * Usage: bench_ablation_drift [--shots=300000] [--p=2e-3]
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 300000);
    const double p = opts.getDouble("p", 2e-3);
    const uint32_t d = static_cast<uint32_t>(opts.getUint("distance", 5));
    const uint64_t seed = opts.getUint("seed", 53);

    benchBanner("Ablation", "error-rate drift vs GWT re-programming");
    std::printf("d=%u, base p=%g, %llu shots per point, MWPM on both "
                "GWTs\n\n",
                d, p, static_cast<unsigned long long>(shots));

    // Stale table: built for the uniform-rate device.
    ExperimentConfig uniform_cfg;
    uniform_cfg.distance = d;
    uniform_cfg.physicalErrorRate = p;
    ExperimentContext uniform(uniform_cfg);

    std::printf("%-10s %-16s %-16s %-10s\n", "spread",
                "matched GWT", "stale GWT", "stale/matched");
    for (double spread : {0.0, 1.0, 2.0, 4.0, 8.0}) {
        ExperimentConfig cfg = uniform_cfg;
        cfg.driftSpread = spread;
        cfg.driftSeed = 1000 + static_cast<uint64_t>(spread * 10);
        ExperimentContext drifted(cfg);

        auto matched =
            runMemoryExperiment(drifted, mwpmFactory(), shots, seed);
        // Same registry construction, but against the stale table.
        DecoderFactory stale = [&uniform](const ExperimentContext &ctx) {
            DecoderOptions o = decoderOptionsFor(ctx);
            o.gwt = &uniform.gwt();
            return makeDecoder("mwpm", o);
        };
        auto stale_r =
            runMemoryExperiment(drifted, stale, shots, seed);

        double ratio = matched.ler() > 0
                           ? stale_r.ler() / matched.ler()
                           : 0.0;
        std::printf("%-10.1f %-16s %-16s %-10.2f\n", spread,
                    formatProb(matched.ler()).c_str(),
                    formatProb(stale_r.ler()).c_str(), ratio);
    }
    std::printf("\n(paper Sec. 8.2: prior real-time decoders cannot "
                "reprogram for drift;\nAstrea's GWT absorbs it by "
                "rebuilding the weights.)\n");
    return 0;
}
