/**
 * @file
 * Export the decoding artifacts of one configuration for use outside
 * this library: the noisy memory circuit in Stim's circuit language,
 * the extracted detector error model in Stim's .dem language, and the
 * Global Weight Table as a binary image. The .stim/.dem files can be
 * cross-validated against the reference Stim + PyMatching stack.
 *
 * Usage: export_artifacts [--distance=3] [--p=1e-3] [--out=/tmp/astrea]
 */

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "graph/weight_table_io.hh"
#include "harness/memory_experiment.hh"
#include "harness/trace_io.hh"
#include "interop/stim_export.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    ExperimentConfig config;
    config.distance = static_cast<uint32_t>(opts.getUint("distance", 3));
    config.physicalErrorRate = opts.getDouble("p", 1e-3);
    std::string prefix = opts.getString("out", "/tmp/astrea_d" +
                                        std::to_string(config.distance));

    std::printf("Building d=%u, p=%g memory-Z experiment...\n",
                config.distance, config.physicalErrorRate);
    ExperimentContext ctx(config);

    std::string circuit_path = prefix + ".stim";
    std::string dem_path = prefix + ".dem";
    std::string gwt_path = prefix + ".gwt";

    writeTextFile(circuit_path, toStimCircuit(ctx.circuit()));
    writeTextFile(dem_path, toStimDem(ctx.errorModel()));
    saveWeightTable(ctx.gwt(), gwt_path);

    std::printf("  %s : %u qubits, %u detectors, %u measurements\n",
                circuit_path.c_str(), ctx.circuit().numQubits(),
                ctx.circuit().numDetectors(),
                ctx.circuit().numMeasurements());
    std::printf("  %s  : %zu error mechanisms\n", dem_path.c_str(),
                ctx.errorModel().mechanisms().size());
    std::printf("  %s  : %u x %u weight table (%zu bytes quantized)\n",
                gwt_path.c_str(), ctx.gwt().size(), ctx.gwt().size(),
                ctx.gwt().sramBytes());

    // Optional shot corpus (the artifact ships example data too).
    uint64_t trace_shots = opts.getUint("trace-shots", 0);
    if (trace_shots > 0) {
        std::string trace_path = prefix + ".trace";
        SyndromeTrace trace =
            recordTrace(ctx, trace_shots, opts.getUint("seed", 1));
        saveTrace(trace, trace_path);
        std::printf("  %s: %llu recorded shots\n", trace_path.c_str(),
                    static_cast<unsigned long long>(trace_shots));
    }
    std::printf("\nCross-validate with the reference stack:\n"
                "  stim sample_dem --shots 1000 --in %s\n"
                "  pymatching predict ... (load the .dem)\n",
                dem_path.c_str());
    return 0;
}
