/**
 * @file
 * The paper's core trade-off: accuracy vs real-time latency across
 * decoders.
 *
 * Runs one memory-experiment configuration against every decoder in
 * the library — software MWPM (BlossomV stand-in), Astrea, Astrea-G,
 * Union-Find (AFS), Clique+MWPM, and the lookup-table decoder — and
 * prints logical error rate, mean/max latency, and real-time deadline
 * violations, reproducing the landscape of paper Fig. 1(b).
 *
 * Usage: realtime_tradeoff [--distance=7] [--p=1e-3] [--shots=50000]
 */

#include <cstdio>

#include "common/cli.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    ExperimentConfig config;
    config.distance = static_cast<uint32_t>(opts.getUint("distance", 7));
    config.physicalErrorRate = opts.getDouble("p", 1e-3);
    uint64_t shots = opts.getUint("shots", 50000);
    uint64_t seed = opts.getUint("seed", 7);

    std::printf("Decoder trade-off study: d=%u, p=%g, %llu shots\n\n",
                config.distance, config.physicalErrorRate,
                static_cast<unsigned long long>(shots));

    ExperimentContext ctx(config);

    struct Entry
    {
        const char *label;
        DecoderFactory factory;
        bool hardware;  ///< Latency is modeled cycles, not wall clock.
    };
    const Entry entries[] = {
        {"MWPM (sw)", mwpmFactory(), false},
        {"Astrea", astreaFactory(), true},
        {"Astrea-G", astreaGFactory(), true},
        {"UF (AFS)", unionFindFactory(), false},
        {"Clique", cliqueFactory(), false},
        {"LUT", lutFactory(), true},
    };

    std::printf("%-10s %-12s %-12s %-12s %-10s %-8s\n", "decoder",
                "LER", "mean lat", "max lat", ">1us", "gaveup");
    for (const auto &e : entries) {
        ExperimentResult r =
            runMemoryExperiment(ctx, e.factory, shots, seed);
        // Deadline violations only make sense against wall-clock or
        // modeled latency; both are in latencyNs.
        const char *unit = e.hardware ? "ns*" : "ns";
        std::printf("%-10s %-12s %8.1f %-3s %8.1f %-3s %-10s %llu\n",
                    e.label, formatProb(r.ler()).c_str(),
                    r.latencyNs.mean(), unit, r.latencyNs.max(), unit,
                    r.latencyNs.max() > 1000.0 ? "violates" : "meets",
                    static_cast<unsigned long long>(r.gaveUps));
    }
    std::printf("\n(* modeled FPGA cycles at 250 MHz; software decoders"
                " report wall-clock time)\n");
    return 0;
}
