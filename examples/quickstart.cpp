/**
 * @file
 * Quickstart: decode a distance-3 surface code memory experiment.
 *
 * Builds the full stack for one configuration — layout, noisy circuit,
 * detector error model, decoding graph, Global Weight Table — then runs
 * a Monte-Carlo memory experiment with the software MWPM baseline and
 * with Astrea, and prints their logical error rates and Astrea's
 * modeled hardware latency.
 *
 * Usage: quickstart [--distance=3] [--p=1e-3] [--shots=100000]
 */

#include <cstdio>

#include "common/cli.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    ExperimentConfig config;
    config.distance = static_cast<uint32_t>(opts.getUint("distance", 3));
    config.physicalErrorRate = opts.getDouble("p", 1e-3);
    uint64_t shots = opts.getUint("shots", 100000);
    uint64_t seed = opts.getUint("seed", 1);

    std::printf("Astrea quickstart: d=%u, p=%g, %llu shots\n",
                config.distance, config.physicalErrorRate,
                static_cast<unsigned long long>(shots));

    // Build everything derived from (d, p): circuit, error model,
    // decoding graph, weight table, sampler.
    ExperimentContext ctx(config);
    std::printf("  syndrome vector length: %u detectors\n",
                ctx.gwt().size());
    std::printf("  error mechanisms: %zu\n",
                ctx.errorModel().mechanisms().size());
    std::printf("  GWT SRAM: %zu bytes\n", ctx.gwt().sramBytes());

    // Decode the same shot stream with the software MWPM baseline and
    // with Astrea's brute-force hardware model.
    ExperimentResult mwpm =
        runMemoryExperiment(ctx, mwpmFactory(), shots, seed);
    ExperimentResult astrea_r =
        runMemoryExperiment(ctx, astreaFactory(), shots, seed);

    std::printf("\n%-10s %-12s %-14s %-12s\n", "decoder", "LER",
                "mean latency", "max latency");
    std::printf("%-10s %-12s %10.1f ns %10.1f ns\n", "MWPM",
                formatProb(mwpm.ler()).c_str(), mwpm.latencyNs.mean(),
                mwpm.latencyNs.max());
    std::printf("%-10s %-12s %10.1f ns %10.1f ns\n", "Astrea",
                formatProb(astrea_r.ler()).c_str(),
                astrea_r.latencyNs.mean(), astrea_r.latencyNs.max());
    std::printf("\nAstrea gave up on %llu / %llu shots (HW > 10)\n",
                static_cast<unsigned long long>(astrea_r.gaveUps),
                static_cast<unsigned long long>(shots));
    return 0;
}
