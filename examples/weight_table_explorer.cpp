/**
 * @file
 * Explore the decoding machinery on a single syndrome.
 *
 * Builds the decoding graph and Global Weight Table for one
 * configuration, prints structural statistics, then samples one noisy
 * shot and walks through the decode: the defect list, the pairwise
 * weight sub-matrix, the matching each decoder chooses, and whether
 * the logical correction was right. A compact way to see what the
 * hardware actually computes.
 *
 * Usage: weight_table_explorer [--distance=5] [--p=2e-3] [--seed=11]
 *        [--min-hw=4]
 */

#include <cstdio>

#include "astrea/astrea_decoder.hh"
#include "common/cli.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    ExperimentConfig config;
    config.distance = static_cast<uint32_t>(opts.getUint("distance", 5));
    config.physicalErrorRate = opts.getDouble("p", 2e-3);
    uint64_t seed = opts.getUint("seed", 11);
    size_t min_hw = opts.getUint("min-hw", 4);

    ExperimentContext ctx(config);
    const auto &gwt = ctx.gwt();
    const auto &graph = ctx.graph();

    std::printf("Decoding substrate for d=%u, p=%g (memory-Z)\n",
                config.distance, config.physicalErrorRate);
    std::printf("  detectors (syndrome positions): %u\n", gwt.size());
    std::printf("  decoding-graph edges: %zu\n", graph.edges().size());
    size_t boundary_edges = 0;
    for (const auto &e : graph.edges()) {
        if (e.v == kBoundaryNode)
            boundary_edges++;
    }
    std::printf("  boundary edges: %zu\n", boundary_edges);
    std::printf("  GWT: %ux%u 8-bit entries = %zu bytes\n", gwt.size(),
                gwt.size(), gwt.sramBytes());

    // Sample a shot with at least min_hw defects.
    Rng rng(seed);
    BitVec dets, obs;
    std::vector<uint32_t> defects;
    for (int tries = 0; tries < 1000000; tries++) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() >= min_hw) {
            defects = dets.onesIndices();
            break;
        }
    }
    if (defects.empty()) {
        std::printf("\nno syndrome with HW >= %zu found; lower "
                    "--min-hw or raise --p\n",
                    min_hw);
        return 1;
    }

    std::printf("\nSampled syndrome: Hamming weight %zu, defects:",
                defects.size());
    for (auto d : defects)
        std::printf(" D%u", d);
    uint64_t actual = obs.none() ? 0u : 1u;
    std::printf("\nactual logical flip: %llu\n",
                static_cast<unsigned long long>(actual));

    // Print the active weight sub-matrix (quantized decades, diagonal
    // = boundary), exactly what Astrea's weight array would hold.
    std::printf("\nActive weight array (decades; diagonal = "
                "boundary):\n      ");
    for (size_t j = 0; j < defects.size(); j++)
        std::printf("%7zu", j);
    std::printf("\n");
    for (size_t i = 0; i < defects.size(); i++) {
        std::printf("%5zu ", i);
        for (size_t j = 0; j < defects.size(); j++) {
            std::printf("%7.1f",
                        weightToDecades(
                            gwt.pairWeight(defects[i], defects[j])));
        }
        std::printf("\n");
    }

    // Decode with each decoder and report.
    MwpmDecoder mwpm(gwt);
    AstreaDecoder astrea(gwt);
    UnionFindDecoder uf(graph);
    struct Row
    {
        const char *name;
        DecodeResult r;
    };
    Row rows[] = {{"MWPM", mwpm.decode(defects)},
                  {"Astrea", astrea.decode(defects)},
                  {"UF", uf.decode(defects)}};

    std::printf("\n%-8s %-10s %-12s %-10s %s\n", "decoder", "predict",
                "weight(dec)", "latency", "verdict");
    for (const auto &row : rows) {
        std::printf("%-8s %-10llu %-12.2f %7.1f ns %s\n", row.name,
                    static_cast<unsigned long long>(row.r.obsMask),
                    row.r.matchingWeight, row.r.latencyNs,
                    row.r.gaveUp ? "gave up"
                    : row.r.obsMask == actual ? "correct"
                                              : "LOGICAL ERROR");
    }
    return 0;
}
