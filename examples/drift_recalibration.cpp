/**
 * @file
 * Drift and GWT re-programming workflow (paper Sec. 8.2).
 *
 * Walks the operational loop of a deployed Astrea decoder:
 *   1. calibrate: build a GWT for the device's current error rates and
 *      save it (the image the FPGA SRAM would be programmed with);
 *   2. drift: the device's per-qubit error rates wander;
 *   3. compare: decode the drifted device's syndromes with the stale
 *      saved table versus a freshly recalibrated one.
 *
 * Usage: drift_recalibration [--distance=5] [--p=2e-3] [--spread=4]
 *        [--shots=200000]
 */

#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.hh"
#include "decoders/registry.hh"
#include "graph/weight_table_io.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    ExperimentConfig base;
    base.distance = static_cast<uint32_t>(opts.getUint("distance", 5));
    base.physicalErrorRate = opts.getDouble("p", 2e-3);
    const double spread = opts.getDouble("spread", 4.0);
    const uint64_t shots = opts.getUint("shots", 200000);
    const uint64_t seed = opts.getUint("seed", 61);
    const std::string path =
        opts.getString("gwt-path", "/tmp/astrea_calibrated_gwt.bin");

    std::printf("Step 1: calibrate at uniform p=%g and program the "
                "GWT\n",
                base.physicalErrorRate);
    ExperimentContext calibrated(base);
    saveWeightTable(calibrated.gwt(), path);
    std::printf("        saved %zu-byte quantized table to %s\n",
                calibrated.gwt().sramBytes(), path.c_str());

    std::printf("\nStep 2: device drifts (per-qubit rates spread "
                "log-uniformly within %gx)\n",
                1.0 + spread);
    ExperimentConfig drifted_cfg = base;
    drifted_cfg.driftSpread = spread;
    drifted_cfg.driftSeed = seed;
    ExperimentContext drifted(drifted_cfg);
    std::printf("        worst qubit now at %.2fx the base rate\n",
                drifted.noiseMap()->maxScale());

    std::printf("\nStep 3: decode the drifted device's syndromes\n");
    GlobalWeightTable stale_gwt = loadWeightTable(path);
    DecoderFactory stale = [&stale_gwt](const ExperimentContext &ctx) {
        // Same registry construction, but against the saved table.
        DecoderOptions o = decoderOptionsFor(ctx);
        o.gwt = &stale_gwt;
        return makeDecoder("mwpm", o);
    };
    auto stale_r = runMemoryExperiment(drifted, stale, shots, seed);
    auto fresh_r =
        runMemoryExperiment(drifted, mwpmFactory(), shots, seed);

    std::printf("  stale GWT (pre-drift weights):   LER = %s\n",
                formatProb(stale_r.ler()).c_str());
    std::printf("  recalibrated GWT (re-programmed): LER = %s\n",
                formatProb(fresh_r.ler()).c_str());
    if (fresh_r.ler() > 0) {
        std::printf("  re-programming recovers a %.2fx accuracy "
                    "factor\n",
                    stale_r.ler() / fresh_r.ler());
    }
    std::printf("\nThis is the flexibility argument of paper Sec. 8.2:"
                " lookup-table and\nfixed-function decoders cannot "
                "absorb drift, a GWT-based design can.\n");
    return 0;
}
