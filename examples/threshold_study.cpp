/**
 * @file
 * Threshold study: logical error rate vs physical error rate for
 * several code distances under MWPM decoding.
 *
 * Sweeps p across a grid for d = 3, 5, 7 and prints the LER matrix.
 * Below the accuracy threshold, larger distances win (curves fan out
 * downward); above it they lose — the crossing visible in the output
 * is the code's threshold under this circuit-level noise model, the
 * regime-setting number behind the paper's choice of p = 1e-4..1e-3.
 *
 * Usage: threshold_study [--shots=100000] [--seed=5]
 */

#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "harness/memory_experiment.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 100000);
    const uint64_t seed = opts.getUint("seed", 5);

    const std::vector<double> ps{5e-4, 1e-3, 2e-3, 3e-3, 5e-3, 8e-3};
    const std::vector<uint32_t> ds{3, 5, 7};

    std::printf("Threshold study (MWPM, memory-Z), %llu shots per "
                "point\n\n",
                static_cast<unsigned long long>(shots));
    std::printf("%-10s", "p");
    for (auto d : ds)
        std::printf(" %-14s", ("d=" + std::to_string(d)).c_str());
    std::printf("\n");

    for (double p : ps) {
        std::printf("%-10g", p);
        std::vector<double> lers;
        for (auto d : ds) {
            ExperimentConfig cfg;
            cfg.distance = d;
            cfg.physicalErrorRate = p;
            ExperimentContext ctx(cfg);
            ExperimentResult r =
                runMemoryExperiment(ctx, mwpmFactory(), shots, seed);
            lers.push_back(r.ler());
            std::printf(" %-14s", formatProb(r.ler()).c_str());
        }
        // Annotate which side of the threshold this row sits on.
        bool suppressing = true;
        for (size_t i = 1; i < lers.size(); i++) {
            if (lers[i] > lers[i - 1])
                suppressing = false;
        }
        std::printf("  %s\n", suppressing ? "(below threshold)"
                                          : "(at/above threshold)");
    }

    std::printf("\nLarger distance helps only below the threshold; "
                "the paper's p = 1e-4..1e-3 regime\nsits comfortably "
                "below it, which is what makes d = 7/9 codes "
                "worthwhile.\n");
    return 0;
}
