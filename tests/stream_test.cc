/**
 * @file
 * Tests for the sliding-window streaming decoder: windowing geometry,
 * commit/carry semantics, and logical-error-rate parity with
 * whole-shot decoding over long round streams.
 */

#include <gtest/gtest.h>

#include "harness/memory_experiment.hh"
#include "stream/window_decoder.hh"

namespace astrea
{
namespace
{

ExperimentContext
makeStream(uint32_t d, uint32_t rounds, double p)
{
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.rounds = rounds;
    cfg.physicalErrorRate = p;
    return ExperimentContext(cfg);
}

std::unique_ptr<WindowDecoder>
makeWindowed(const ExperimentContext &ctx, StreamingConfig sc = {})
{
    const auto &cfg = ctx.config();
    uint32_t rounds = cfg.rounds ? cfg.rounds : cfg.distance;
    return std::make_unique<WindowDecoder>(
        ctx.gwt(), ctx.circuit().detectorInfo(), rounds + 1,
        cfg.distance, mwpmFactory()(ctx), sc);
}

TEST(WindowDecoder, DefaultGeometry)
{
    ExperimentContext ctx = makeStream(3, 12, 2e-3);
    auto dec = makeWindowed(ctx);
    EXPECT_EQ(dec->windowRounds(), 6u);
    EXPECT_EQ(dec->commitRounds(), 3u);
    EXPECT_EQ(dec->name(), "Windowed(MWPM)");
}

TEST(WindowDecoder, RejectsDegenerateGeometry)
{
    ExperimentContext ctx = makeStream(3, 12, 2e-3);
    StreamingConfig sc;
    sc.windowRounds = 3;
    sc.commitRounds = 3;  // Window must exceed commit region.
    EXPECT_DEATH(makeWindowed(ctx, sc), "larger");
}

TEST(WindowDecoder, EmptySyndrome)
{
    ExperimentContext ctx = makeStream(3, 12, 2e-3);
    auto dec = makeWindowed(ctx);
    DecodeResult r = dec->decode({});
    EXPECT_EQ(r.obsMask, 0u);
    EXPECT_EQ(dec->stats().windows, 0u);
}

TEST(WindowDecoder, SingleEarlyDefectCommitsInFirstWindow)
{
    ExperimentContext ctx = makeStream(3, 12, 2e-3);
    auto dec = makeWindowed(ctx);
    // Detector 0 is in round 0.
    ASSERT_EQ(ctx.circuit().detectorInfo()[0].round, 0u);
    DecodeResult r = dec->decode({0});
    EXPECT_EQ(r.obsMask, ctx.gwt().pairObs(0, 0));
    EXPECT_GE(dec->stats().windows, 1u);
}

TEST(WindowDecoder, MatchesWholeShotOnModerateStreams)
{
    // Same shot stream decoded whole vs windowed: predictions should
    // agree on the overwhelming majority of shots (window commits can
    // occasionally differ near boundaries, both being valid decodes).
    ExperimentContext ctx = makeStream(3, 15, 2e-3);
    auto whole = mwpmFactory()(ctx);
    auto windowed = makeWindowed(ctx);

    Rng rng(3);
    BitVec dets, obs;
    int shots = 4000, disagreements = 0;
    for (int s = 0; s < shots; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        DecodeResult a = whole->decode(defects);
        DecodeResult b = windowed->decode(defects);
        if (a.obsMask != b.obsMask)
            disagreements++;
    }
    EXPECT_LT(disagreements, shots / 50);
}

TEST(WindowDecoder, LerTracksWholeShotDecoding)
{
    ExperimentContext ctx = makeStream(3, 15, 2e-3);
    const uint64_t shots = 60000;
    auto whole = runMemoryExperiment(ctx, mwpmFactory(), shots, 7);
    auto windowed = runMemoryExperiment(
        ctx, windowedFactory(mwpmFactory()), shots, 7);
    ASSERT_GT(whole.logicalErrors.successes, 20u);
    // Windowed decoding costs a bounded accuracy factor.
    EXPECT_LT(windowed.ler(), 2.0 * whole.ler());
}

TEST(WindowDecoder, ProcessesExpectedWindowCount)
{
    ExperimentContext ctx = makeStream(3, 15, 5e-3);
    auto dec = makeWindowed(ctx);
    // 16 detector rounds, W = 6, C = 3: windows start at rounds
    // 0,3,6,9 and the one reaching the end -> about 5 per busy shot.
    Rng rng(9);
    BitVec dets, obs;
    for (int s = 0; s < 50; s++) {
        ctx.sampler().sample(rng, dets, obs);
        dec->decode(dets.onesIndices());
    }
    EXPECT_GT(dec->stats().windows, 0u);
    EXPECT_LE(dec->stats().maxWindowDefects, 64u);
}

TEST(WindowDecoder, BoundsPerWindowWork)
{
    // Per-window defect counts must stay bounded regardless of stream
    // length (the whole point of streaming).
    ExperimentContext long_stream = makeStream(3, 30, 3e-3);
    auto dec = makeWindowed(long_stream);
    Rng rng(11);
    BitVec dets, obs;
    size_t whole_max = 0;
    for (int s = 0; s < 300; s++) {
        long_stream.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        whole_max = std::max(whole_max, defects.size());
        dec->decode(defects);
    }
    EXPECT_LT(dec->stats().maxWindowDefects, whole_max);
}

TEST(WindowDecoder, WorksWithAstreaInner)
{
    // Windowing keeps per-window Hamming weight small, letting Astrea
    // decode streams whose whole-shot weight exceeds its HW-10 limit.
    ExperimentContext ctx = makeStream(3, 30, 3e-3);
    auto windowed = runMemoryExperiment(
        ctx, windowedFactory(astreaFactory()), 5000, 13);
    auto whole = runMemoryExperiment(ctx, astreaFactory(), 5000, 13);
    EXPECT_LT(windowed.gaveUps, whole.gaveUps);
}

TEST(WindowDecoder, CarriedDefectsAreEventuallyResolved)
{
    ExperimentContext ctx = makeStream(3, 15, 5e-3);
    auto dec = makeWindowed(ctx);
    Rng rng(17);
    BitVec dets, obs;
    for (int s = 0; s < 500; s++) {
        ctx.sampler().sample(rng, dets, obs);
        // Must terminate and produce a prediction for every shot.
        DecodeResult r = dec->decode(dets.onesIndices());
        EXPECT_FALSE(r.gaveUp);
    }
    // Straddling pairs do occur at this error rate.
    EXPECT_GT(dec->stats().carriedDefects, 0u);
}

} // namespace
} // namespace astrea
