/**
 * @file
 * Tests for tail-sampled decode tracing: the trace store's ring and
 * exemplar table (telemetry/trace_store.hh), the per-thread tracer's
 * retention verdicts and span accounting (telemetry/decode_trace.hh),
 * the deterministic trace-id scheme, the JSON endpoints' shape, and
 * LatencyHistogram::bucketIndex edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "harness/latency_stats.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/json_value.hh"
#include "telemetry/trace_store.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

StoredTrace
makeTrace(uint64_t id, double latency_ns,
          const char *decoder = "astrea")
{
    StoredTrace t;
    t.traceId = id;
    t.shot = id;  // Any distinct value.
    t.latencyNs = latency_ns;
    t.reasons = kTraceKeepSlow;
    std::snprintf(t.decoder, sizeof(t.decoder), "%s", decoder);
    return t;
}

TEST(TraceIdTest, HexRoundTripAndParsing)
{
    EXPECT_EQ(traceIdHex(0x00c0ffee00c0ffeeull), "00c0ffee00c0ffee");
    EXPECT_EQ(traceIdHex(1), "0000000000000001");
    EXPECT_EQ(parseTraceIdHex("00c0ffee00c0ffee"),
              0x00c0ffee00c0ffeeull);
    EXPECT_EQ(parseTraceIdHex("0xDEADBEEF"), 0xDEADBEEFull);
    EXPECT_EQ(parseTraceIdHex(""), 0u);
    EXPECT_EQ(parseTraceIdHex("zz"), 0u);
    EXPECT_EQ(parseTraceIdHex("12 34"), 0u);
}

TEST(TraceStoreTest, KeepFindAndCounters)
{
    TraceStore store(8);
    EXPECT_FALSE(store.find(42, nullptr));

    store.noteConsidered();
    store.keep(makeTrace(42, 500.0));
    store.noteConsidered();
    store.noteDropped();

    StoredTrace out;
    ASSERT_TRUE(store.find(42, &out));
    EXPECT_EQ(out.traceId, 42u);
    EXPECT_DOUBLE_EQ(out.latencyNs, 500.0);
    EXPECT_STREQ(out.decoder, "astrea");

    const TraceStore::Counters c = store.counters();
    EXPECT_EQ(c.considered, 2u);
    EXPECT_EQ(c.kept, 1u);
    EXPECT_EQ(c.dropped, 1u);
    EXPECT_EQ(c.evicted, 0u);
    EXPECT_EQ(c.occupancy, 1u);
    EXPECT_EQ(c.capacity, 8u);
}

TEST(TraceStoreTest, RingEvictsOldestAndCounts)
{
    TraceStore store(4);
    // Same latency so every trace lands in the same exemplar bucket
    // and eviction is decided purely by the ring.
    for (uint64_t id = 1; id <= 10; id++)
        store.keep(makeTrace(id, 100.0));

    const TraceStore::Counters c = store.counters();
    EXPECT_EQ(c.kept, 10u);
    EXPECT_EQ(c.evicted, 6u);
    EXPECT_EQ(c.occupancy, 4u);

    // The newest four live in the ring; trace 1 only survives if the
    // exemplar table pinned it (it did: first keep of its bucket).
    for (uint64_t id = 7; id <= 10; id++)
        EXPECT_TRUE(store.find(id, nullptr)) << id;
    // Traces 2..6 were evicted and never beat the bucket exemplar.
    for (uint64_t id = 2; id <= 6; id++)
        EXPECT_FALSE(store.find(id, nullptr)) << id;

    // Newest first in the snapshot.
    const auto snap = store.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].traceId, 10u);
    EXPECT_EQ(snap[3].traceId, 7u);
}

TEST(TraceStoreTest, ExemplarKeepsWorstPerBucketTieKeepsIncumbent)
{
    TraceStore store(64);

    // All latencies below live in the same log2 bucket [512, 1024).
    store.keep(makeTrace(1, 600.0));
    const size_t b = latencyBucketIndex(600);
    TraceStore::Exemplar e = store.exemplar(b);
    ASSERT_TRUE(e.valid);
    EXPECT_EQ(e.traceId, 1u);

    // A slower trace in the same bucket replaces the exemplar...
    store.keep(makeTrace(2, 1000.0));
    ASSERT_EQ(latencyBucketIndex(1000), b);
    e = store.exemplar(b);
    EXPECT_EQ(e.traceId, 2u);
    EXPECT_DOUBLE_EQ(e.latencyNs, 1000.0);

    // ...a tie keeps the incumbent (strictly-greater replacement)...
    store.keep(makeTrace(3, 1000.0));
    e = store.exemplar(b);
    EXPECT_EQ(e.traceId, 2u);

    // ...and a faster one never does.
    store.keep(makeTrace(4, 700.0));
    e = store.exemplar(b);
    EXPECT_EQ(e.traceId, 2u);

    // An exemplar stays resolvable by id even after ring eviction:
    // the table pins a full copy.
    StoredTrace out;
    ASSERT_TRUE(store.find(2, &out));
    EXPECT_DOUBLE_EQ(out.latencyNs, 1000.0);
}

TEST(TraceStoreTest, ExemplarAboveCoversOverflowBucket)
{
    TraceStore store(8);
    store.keep(makeTrace(1, 50.0));
    store.keep(makeTrace(2, 1e9));  // Far beyond the last log2 bucket.

    const size_t low = latencyBucketIndex(50);
    TraceStore::Exemplar inf = store.exemplarAbove(low);
    ASSERT_TRUE(inf.valid);
    EXPECT_EQ(inf.traceId, 2u);
    EXPECT_DOUBLE_EQ(inf.latencyNs, 1e9);

    // Nothing above the slowest trace's own bucket.
    inf = store.exemplarAbove(kLatencyBuckets - 1);
    EXPECT_FALSE(inf.valid);
}

TEST(TraceStoreTest, AnnotateAuditReachesRingAndExemplar)
{
    TraceStore store(8);
    StoredTrace t = makeTrace(7, 900.0);
    t.audited = true;
    store.keep(t);

    EXPECT_FALSE(
        store.annotateAudit(999, false, 0.0, 0.0, 0, 0));
    EXPECT_TRUE(
        store.annotateAudit(7, true, 0.25, 12.5, 0x2, 3));

    StoredTrace out;
    ASSERT_TRUE(store.find(7, &out));
    EXPECT_TRUE(out.auditDone);
    EXPECT_TRUE(out.auditMismatch);
    EXPECT_DOUBLE_EQ(out.auditGapDecades, 0.25);
    EXPECT_DOUBLE_EQ(out.oracleWeight, 12.5);
    EXPECT_EQ(out.oracleObs, 0x2u);
    EXPECT_EQ(out.captureSeq, 3u);
}

TEST(TraceStoreTest, IndexJsonFilters)
{
    TraceStore store(16);
    StoredTrace slow = makeTrace(1, 5000.0, "astrea");
    StoredTrace fast = makeTrace(2, 100.0, "astrea");
    StoredTrace other = makeTrace(3, 7000.0, "mwpm");
    other.gaveUp = true;
    other.reasons = kTraceKeepGiveUp;
    store.keep(slow);
    store.keep(fast);
    store.keep(other);

    auto count = [&](const TraceQuery &q) {
        JsonValue doc;
        EXPECT_TRUE(parseJson(store.indexJson(q), doc));
        EXPECT_EQ(doc["trace_schema_version"].asUint(0),
                  kTraceSchemaVersion);
        return doc["traces"].arr.size();
    };

    EXPECT_EQ(count(TraceQuery{}), 3u);

    TraceQuery min_ns;
    min_ns.minNs = 1000.0;
    EXPECT_EQ(count(min_ns), 2u);

    TraceQuery by_decoder;
    by_decoder.decoder = "mwpm";
    EXPECT_EQ(count(by_decoder), 1u);

    TraceQuery by_outcome;
    by_outcome.outcome = "give_up";
    EXPECT_EQ(count(by_outcome), 1u);

    TraceQuery limited;
    limited.limit = 2;
    EXPECT_EQ(count(limited), 2u);

    TraceQuery none;
    none.decoder = "nope";
    EXPECT_EQ(count(none), 0u);
}

TEST(TraceStoreTest, DetailJsonCarriesSpansAuditAndRunInfo)
{
    TraceStore store(8);
    store.setRunInfo("{\"distance\":5,\"p\":0.001}",
                     "{\"name\":\"astrea\"}");

    StoredTrace t = makeTrace(9, 4000.0);
    t.hw = 2;
    t.defects[0] = 11;
    t.defects[1] = 23;
    t.audited = true;
    t.numSpans = 2;
    t.spans[0] = TraceSpan{
        static_cast<uint8_t>(PerfStage::Batch), -1, 0, 9000};
    t.spans[1] = TraceSpan{
        static_cast<uint8_t>(PerfStage::Matching), 3, 1500, 3000};
    store.keep(t);
    ASSERT_TRUE(store.annotateAudit(9, false, 0.125, 10.0, 0, 0));

    const std::string text = store.detailJson(9);
    ASSERT_FALSE(text.empty());
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    EXPECT_EQ(doc["trace_id"].asString(""), traceIdHex(9));
    EXPECT_EQ(doc["hw"].asUint(0), 2u);
    ASSERT_EQ(doc["spans"].arr.size(), 2u);
    EXPECT_EQ(doc["spans"].arr[0]["stage"].asString(""), "batch");
    EXPECT_DOUBLE_EQ(doc["spans"].arr[0]["shot"].asNumber(0.0), -1.0);
    EXPECT_EQ(doc["spans"].arr[1]["stage"].asString(""), "matching");
    EXPECT_EQ(doc["spans"].arr[1]["dur_ns"].asUint(0), 3000u);
    ASSERT_EQ(doc["defects"].arr.size(), 2u);
    EXPECT_EQ(doc["defects"].arr[1].asUint(0), 23u);
    EXPECT_TRUE(doc["audit"]["done"].asBool(false));
    EXPECT_DOUBLE_EQ(
        doc["audit"]["weight_gap_decades"].asNumber(-1.0), 0.125);
    // The embedded run info is what `replay --trace-id` rebuilds from.
    EXPECT_EQ(doc["context"]["distance"].asUint(0), 5u);
    EXPECT_EQ(doc["decoder_config"]["name"].asString(""), "astrea");

    EXPECT_TRUE(store.detailJson(12345).empty());
}

/** Tracer fixture: isolates the process-wide retention config. */
class DecodeTracerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceStore::global().configure(64);
        TraceRetentionConfig cfg;
        cfg.enabled = true;
        cfg.tailThresholdNs = 1000.0;
        cfg.headStride = 0;  // No head sampling unless a test asks.
        setTraceRetention(cfg);
        setTraceAutoTailNs(0.0);
    }

    void TearDown() override
    {
        TraceRetentionConfig cfg;
        cfg.enabled = false;
        setTraceRetention(cfg);
        setTraceAutoTailNs(0.0);
    }

    uint64_t finish(DecodeTracer &tracer, uint32_t shot_idx,
                    const TraceShotOutcome &o)
    {
        return tracer.finishShot(shot_idx, o);
    }
};

TEST_F(DecodeTracerTest, RetentionVerdictsPerReason)
{
    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(0, 0, "astrea", 1234);
    ASSERT_TRUE(tracer.active());

    // Fast, clean, unaudited: dropped.
    TraceShotOutcome ok;
    ok.latencyNs = 10.0;
    EXPECT_EQ(finish(tracer, 0, ok), 0u);

    // Slow: kept with the slow reason.
    TraceShotOutcome slow;
    slow.latencyNs = 5000.0;
    const uint64_t slow_id = finish(tracer, 1, slow);
    ASSERT_NE(slow_id, 0u);
    StoredTrace out;
    ASSERT_TRUE(TraceStore::global().find(slow_id, &out));
    EXPECT_EQ(out.reasons, kTraceKeepSlow);
    EXPECT_STREQ(out.decoder, "astrea");

    // Give-up, logical error and audit sampling each retain.
    TraceShotOutcome gave;
    gave.latencyNs = 10.0;
    gave.gaveUp = true;
    const uint64_t gave_id = finish(tracer, 2, gave);
    ASSERT_NE(gave_id, 0u);
    ASSERT_TRUE(TraceStore::global().find(gave_id, &out));
    EXPECT_EQ(out.reasons, kTraceKeepGiveUp);

    TraceShotOutcome err;
    err.latencyNs = 10.0;
    err.logicalError = true;
    const uint64_t err_id = finish(tracer, 3, err);
    ASSERT_NE(err_id, 0u);
    ASSERT_TRUE(TraceStore::global().find(err_id, &out));
    EXPECT_EQ(out.reasons, kTraceKeepError);

    TraceShotOutcome audited;
    audited.latencyNs = 10.0;
    audited.audited = true;
    const uint64_t audit_id = finish(tracer, 4, audited);
    ASSERT_NE(audit_id, 0u);
    ASSERT_TRUE(TraceStore::global().find(audit_id, &out));
    EXPECT_EQ(out.reasons, kTraceKeepAudit);
    EXPECT_TRUE(out.audited);

    tracer.endBatch();
    EXPECT_FALSE(tracer.active());
}

TEST_F(DecodeTracerTest, HeadStrideKeepsEveryNth)
{
    TraceRetentionConfig cfg;
    cfg.enabled = true;
    cfg.tailThresholdNs = 1e12;  // Nothing is "slow".
    cfg.headStride = 1;          // ...but every decode is kept.
    setTraceRetention(cfg);

    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(0, 100, "astrea", 99);
    TraceShotOutcome ok;
    ok.latencyNs = 5.0;
    for (uint32_t i = 0; i < 3; i++) {
        const uint64_t id = finish(tracer, i, ok);
        ASSERT_NE(id, 0u) << i;
        StoredTrace out;
        ASSERT_TRUE(TraceStore::global().find(id, &out));
        EXPECT_EQ(out.reasons, kTraceKeepStride);
        EXPECT_EQ(out.shot, 100u + i);
    }
    tracer.endBatch();
}

TEST_F(DecodeTracerTest, TraceIdsDeterministicPerSeedAndShot)
{
    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(1, 500, "astrea", 42);
    const uint64_t a0 = tracer.shotId(0);
    const uint64_t a1 = tracer.shotId(1);
    tracer.endBatch();

    // Same seed and base shot: identical ids (replayable); ids are
    // distinct across shots and never 0.
    tracer.beginBatch(1, 500, "astrea", 42);
    EXPECT_EQ(tracer.shotId(0), a0);
    EXPECT_EQ(tracer.shotId(1), a1);
    EXPECT_NE(a0, a1);
    EXPECT_NE(a0, 0u);
    tracer.endBatch();

    // Different seed: different ids.
    tracer.beginBatch(1, 500, "astrea", 43);
    EXPECT_NE(tracer.shotId(0), a0);
    tracer.endBatch();
}

TEST_F(DecodeTracerTest, SpansAttachToTheirShotWithBatchEnvelope)
{
    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(0, 0, "astrea", 7);

    tracer.stageBegin(PerfStage::Batch);

    tracer.shotBegin(0);
    tracer.stageBegin(PerfStage::Gather);
    tracer.stageEnd(PerfStage::Gather);

    tracer.shotBegin(1);
    tracer.stageBegin(PerfStage::Matching);
    tracer.stageEnd(PerfStage::Matching);
    tracer.stageBegin(PerfStage::Verdict);
    tracer.stageEnd(PerfStage::Verdict);

    tracer.stageEnd(PerfStage::Batch);

    TraceShotOutcome slow;
    slow.latencyNs = 9000.0;
    const uint64_t id = finish(tracer, 1, slow);
    ASSERT_NE(id, 0u);

    StoredTrace out;
    ASSERT_TRUE(TraceStore::global().find(id, &out));
    // Batch envelope first, then only shot 1's spans — shot 0's
    // gather span belongs to a different (dropped) trace.
    ASSERT_EQ(out.numSpans, 3u);
    EXPECT_EQ(out.spans[0].stage,
              static_cast<uint8_t>(PerfStage::Batch));
    EXPECT_EQ(out.spans[0].shot, -1);
    EXPECT_EQ(out.spans[1].stage,
              static_cast<uint8_t>(PerfStage::Matching));
    EXPECT_EQ(out.spans[1].shot, 1);
    EXPECT_EQ(out.spans[2].stage,
              static_cast<uint8_t>(PerfStage::Verdict));
    EXPECT_EQ(out.spans[2].shot, 1);
    EXPECT_EQ(out.droppedSpans, 0u);
    tracer.endBatch();
}

TEST_F(DecodeTracerTest, DisabledTracerRecordsNothing)
{
    TraceRetentionConfig cfg;
    cfg.enabled = false;
    setTraceRetention(cfg);

    TraceStore::global().configure(16);
    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(0, 0, "astrea", 1);
    EXPECT_FALSE(tracer.active());
    TraceShotOutcome slow;
    slow.latencyNs = 1e9;
    slow.gaveUp = true;
    EXPECT_EQ(finish(tracer, 0, slow), 0u);
    tracer.endBatch();
    EXPECT_EQ(TraceStore::global().counters().considered, 0u);
}

TEST_F(DecodeTracerTest, AutoTailUsedWhenThresholdIsZero)
{
    TraceRetentionConfig cfg;
    cfg.enabled = true;
    cfg.tailThresholdNs = 0.0;  // Auto.
    cfg.headStride = 0;
    setTraceRetention(cfg);
    setTraceAutoTailNs(200.0);
    EXPECT_DOUBLE_EQ(traceEffectiveTailNs(), 200.0);

    DecodeTracer &tracer = decodeTracer();
    tracer.beginBatch(0, 0, "astrea", 5);
    TraceShotOutcome fast;
    fast.latencyNs = 100.0;
    EXPECT_EQ(finish(tracer, 0, fast), 0u);
    TraceShotOutcome slow;
    slow.latencyNs = 300.0;
    EXPECT_NE(finish(tracer, 1, slow), 0u);
    tracer.endBatch();

    // An explicit threshold wins over the published p99.
    cfg.tailThresholdNs = 1000.0;
    setTraceRetention(cfg);
    EXPECT_DOUBLE_EQ(traceEffectiveTailNs(), 1000.0);
}

TEST(LatencyHistogramTest, BucketIndexEdgeCases)
{
    LatencyHistogram h(50.0, 10000.0);  // 200 buckets of 50 ns.
    ASSERT_EQ(h.numBuckets(), 200u);

    EXPECT_EQ(h.bucketIndex(0.0), 0u);
    EXPECT_EQ(h.bucketIndex(49.999), 0u);
    EXPECT_EQ(h.bucketIndex(50.0), 1u);
    EXPECT_EQ(h.bucketIndex(9999.0), 199u);

    // Overflow region and junk input map to numBuckets().
    EXPECT_EQ(h.bucketIndex(10000.0), 200u);
    EXPECT_EQ(h.bucketIndex(1e12), 200u);
    EXPECT_EQ(h.bucketIndex(-1.0), 200u);
    EXPECT_EQ(h.bucketIndex(std::nan("")), 200u);
    EXPECT_EQ(h.bucketIndex(
                  std::numeric_limits<double>::infinity()),
              200u);

    // bucketIndex agrees with where add() puts the sample.
    h.add(125.0);
    EXPECT_DOUBLE_EQ(h.bucketFraction(h.bucketIndex(125.0)), 1.0);
}

} // namespace
