/**
 * @file
 * Tests for syndrome trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "decoders/mwpm_decoder.hh"
#include "harness/trace_io.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
traceContext()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 3;
        cfg.physicalErrorRate = 3e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(TraceIo, RecordShape)
{
    SyndromeTrace trace = recordTrace(traceContext(), 500, 21);
    EXPECT_EQ(trace.numDetectors, 16u);
    EXPECT_EQ(trace.numObservables, 1u);
    EXPECT_EQ(trace.shots.size(), 500u);
    for (const auto &shot : trace.shots) {
        for (size_t i = 1; i < shot.defects.size(); i++)
            EXPECT_LT(shot.defects[i - 1], shot.defects[i]);
        EXPECT_LE(shot.observables, 1u);
    }
}

TEST(TraceIo, RecordIsDeterministicInSeed)
{
    SyndromeTrace a = recordTrace(traceContext(), 200, 33);
    SyndromeTrace b = recordTrace(traceContext(), 200, 33);
    ASSERT_EQ(a.shots.size(), b.shots.size());
    for (size_t s = 0; s < a.shots.size(); s++) {
        EXPECT_EQ(a.shots[s].defects, b.shots[s].defects);
        EXPECT_EQ(a.shots[s].observables, b.shots[s].observables);
    }
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    SyndromeTrace trace = recordTrace(traceContext(), 300, 44);
    std::string path = tempPath("trace_roundtrip.bin");
    saveTrace(trace, path);
    SyndromeTrace loaded = loadTrace(path);

    EXPECT_EQ(loaded.numDetectors, trace.numDetectors);
    EXPECT_EQ(loaded.numObservables, trace.numObservables);
    ASSERT_EQ(loaded.shots.size(), trace.shots.size());
    for (size_t s = 0; s < trace.shots.size(); s++) {
        EXPECT_EQ(loaded.shots[s].defects, trace.shots[s].defects);
        EXPECT_EQ(loaded.shots[s].observables,
                  trace.shots[s].observables);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayMatchesLiveDecoding)
{
    // Replaying a recorded trace must give exactly the same error
    // count as the live experiment on the same seed (the harness and
    // recordTrace share the per-worker stream layout for 1 thread).
    const auto &ctx = traceContext();
    const uint64_t shots = 2000;
    SyndromeTrace trace = recordTrace(ctx, shots, 55);
    MwpmDecoder dec(ctx.gwt());
    ReplayResult replay = replayTrace(trace, dec);

    auto live = runMemoryExperiment(ctx, mwpmFactory(), shots, 55, 1);
    EXPECT_EQ(replay.shots, shots);
    EXPECT_EQ(replay.logicalErrors, live.logicalErrors.successes);
}

TEST(TraceIo, ReplayCountsGaveUps)
{
    const auto &ctx = traceContext();
    SyndromeTrace trace;
    trace.numDetectors = 16;
    trace.numObservables = 1;
    // Synthetic dense shot that Astrea must refuse (HW > 10).
    TraceShot dense;
    for (uint32_t i = 0; i < 12; i++)
        dense.defects.push_back(i);
    trace.shots.push_back(dense);

    AstreaDecoder astrea(ctx.gwt());
    ReplayResult r = replayTrace(trace, astrea);
    EXPECT_EQ(r.gaveUps, 1u);
}

TEST(TraceIo, RejectsGarbage)
{
    std::string path = tempPath("trace_garbage.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("definitely not a trace", 1, 22, f);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "not a syndrome trace");
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsOutOfRangeDefects)
{
    SyndromeTrace trace;
    trace.numDetectors = 4;
    trace.numObservables = 1;
    TraceShot bad;
    bad.defects = {99};
    trace.shots.push_back(bad);
    std::string path = tempPath("trace_bad_defect.bin");
    saveTrace(trace, path);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "out of range");
    std::remove(path.c_str());
}

} // namespace
} // namespace astrea
