/**
 * @file
 * Tests for the online accuracy auditor (audit/auditor.hh) and its
 * bounded lock-free queue (audit/audit_queue.hh): queue semantics,
 * oracle correctness in both weight domains, shot classification
 * (optimal / suboptimal / observable-mismatch / weight-underrun),
 * give-up oracle coverage, drop accounting, weight-table rebinding,
 * flight-recorder capture on observable mismatch, and the decode
 * service's schema-v2 audit surfaces.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/auditor.hh"
#include "common/rng.hh"
#include "common/weight.hh"
#include "decoders/registry.hh"
#include "harness/decode_service.hh"
#include "harness/memory_experiment.hh"
#include "harness/replay.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json_value.hh"

namespace astrea
{
namespace
{

// ---------------------------------------------------------------------------
// AuditQueue

AuditSample
sampleForShot(uint64_t shot)
{
    AuditSample s;
    s.shot = shot;
    s.hw = 1;
    s.defects[0] = 0;
    return s;
}

TEST(AuditQueueTest, PushPopIsFifo)
{
    AuditQueue q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (uint64_t i = 0; i < 4; i++)
        EXPECT_TRUE(q.tryPush(sampleForShot(i)));
    EXPECT_FALSE(q.tryPush(sampleForShot(99))) << "push on full queue";

    AuditSample out;
    for (uint64_t i = 0; i < 4; i++) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out.shot, i);
    }
    EXPECT_FALSE(q.tryPop(out)) << "pop on empty queue";

    // Slots recycle after wraparound.
    EXPECT_TRUE(q.tryPush(sampleForShot(7)));
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.shot, 7u);
}

TEST(AuditQueueTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(AuditQueue(1).capacity(), 2u);
    EXPECT_EQ(AuditQueue(3).capacity(), 4u);
    EXPECT_EQ(AuditQueue(1000).capacity(), 1024u);
}

// ---------------------------------------------------------------------------
// Auditor with a synthetic weight table

/**
 * Two-detector table. Direct pair: 1 decade (q = 8), obs bit 0 set;
 * each boundary: 2 decades (q = 16), obs 1 and 0 — so the boundary
 * route flips the same observable as the direct route and the oracle
 * optimum is the direct pair at weight 1.0.
 */
GlobalWeightTable
tinyGwt()
{
    return GlobalWeightTable(2, {16, 8, 8, 16}, {2.0, 1.0, 1.0, 2.0},
                             {1, 1, 1, 0});
}

AuditConfig
testAuditConfig()
{
    AuditConfig cfg;
    cfg.sampleRate = 1.0;
    cfg.queueCapacity = 64;
    cfg.captureMismatches = true;
    return cfg;
}

DecodeResult
prodResult(uint64_t obs, double weight, bool gave_up = false)
{
    DecodeResult dr;
    dr.obsMask = obs;
    dr.matchingWeight = weight;
    dr.gaveUp = gave_up;
    return dr;
}

const std::vector<uint32_t> kBothDefects = {0, 1};

TEST(AuditorTest, OracleDecodeFindsMinimumInBothBackends)
{
    GlobalWeightTable gwt = tinyGwt();

    AccuracyAuditor dp(gwt, testAuditConfig());
    auto o = dp.oracleDecode(kBothDefects);
    EXPECT_TRUE(o.usedDp);
    EXPECT_DOUBLE_EQ(o.weight, 1.0);
    EXPECT_EQ(o.obsMask, 1u);

    // dpMaxHw = 0 forces the blossom fallback; same optimum.
    AuditConfig blossom_cfg = testAuditConfig();
    blossom_cfg.dpMaxHw = 0;
    AccuracyAuditor blossom(gwt, blossom_cfg);
    o = blossom.oracleDecode(kBothDefects);
    EXPECT_FALSE(o.usedDp);
    EXPECT_DOUBLE_EQ(o.weight, 1.0);
    EXPECT_EQ(o.obsMask, 1u);
}

TEST(AuditorTest, ClassifiesOptimalSuboptimalAndMismatch)
{
    telemetry::FlightRecorder::setGlobalEnabled(false);
    GlobalWeightTable gwt = tinyGwt();
    AccuracyAuditor auditor(gwt, testAuditConfig());

    // Optimal: production found the weight-1 direct pair.
    auditor.offer(0, 0, kBothDefects, prodResult(1, 1.0), 1);
    // Suboptimal: both defects sent to the boundary (weight 4, same
    // logical correction).
    auditor.offer(1, 0, kBothDefects, prodResult(1, 4.0), 1);
    // Observable mismatch: production flipped nothing.
    auditor.offer(2, 0, kBothDefects, prodResult(0, 4.0), 1);
    // Weight underrun: production claims weight below the optimum.
    auditor.offer(3, 0, kBothDefects, prodResult(1, 0.25), 1);

    EXPECT_EQ(auditor.drainNow(), 4u);
    auto s = auditor.snapshot();
    EXPECT_EQ(s.offered, 4u);
    EXPECT_EQ(s.sampled, 4u);
    EXPECT_EQ(s.completed, 4u);
    EXPECT_EQ(s.optimal, 2u);  // True optimal + reclassified underrun.
    EXPECT_EQ(s.suboptimal, 1u);
    EXPECT_EQ(s.observableMismatches, 1u);
    EXPECT_EQ(s.weightUnderruns, 1u);
    EXPECT_DOUBLE_EQ(s.optimalityRate(), 0.5);

    // Per-HW: all four decodes had HW 2; the mismatch is audited but
    // not optimal.
    EXPECT_EQ(s.byHw[2].audited, 4u);
    EXPECT_EQ(s.byHw[2].optimal, 2u);

    // Gap histogram: the suboptimal shot's 3-decade gap lands in the
    // 24th 1/8-decade bin; optimal shots land in bin 0.
    EXPECT_EQ(s.gapBuckets[0], 2u);
    EXPECT_EQ(s.gapBuckets[24], 1u);
    EXPECT_DOUBLE_EQ(s.gapSumDecades, 3.0);
    EXPECT_EQ(s.gapCount, 3u);  // Mismatches carry no gap.
}

TEST(AuditorTest, GiveUpsAreAlwaysSampledAndOracleAudited)
{
    GlobalWeightTable gwt = tinyGwt();
    AuditConfig cfg = testAuditConfig();
    cfg.sampleRate = 1e-9;  // Astronomic stride: only give-ups pass.
    AccuracyAuditor auditor(gwt, cfg);

    // offer() seq 0 is sampled by the stride; burn it on a give-up so
    // the non-give-up below genuinely tests stride rejection.
    auditor.offer(0, 0, kBothDefects, prodResult(0, 0.0, true), 1);
    EXPECT_FALSE(
        auditor.offer(1, 0, kBothDefects, prodResult(1, 1.0), 1));
    // The oracle decodes this give-up correctly (obs 1)...
    auditor.offer(2, 0, kBothDefects, prodResult(0, 0.0, true), 1);
    // ...but not this one (actual obs 2 is unreachable).
    auditor.offer(3, 0, kBothDefects, prodResult(0, 0.0, true), 2);

    auditor.drainNow();
    auto s = auditor.snapshot();
    EXPECT_EQ(s.giveUpsOffered, 3u);
    EXPECT_EQ(s.giveUpsAudited, 3u);
    EXPECT_EQ(s.giveUpOracleSuccess, 2u);
    EXPECT_DOUBLE_EQ(s.giveUpCoverage(), 1.0);
    // Give-ups are audited but never classified for optimality.
    EXPECT_EQ(s.optimal + s.suboptimal + s.observableMismatches, 0u);
}

TEST(AuditorTest, FullQueueDropsInsteadOfBlocking)
{
    GlobalWeightTable gwt = tinyGwt();
    AuditConfig cfg = testAuditConfig();
    cfg.queueCapacity = 2;
    AccuracyAuditor auditor(gwt, cfg);

    for (uint64_t i = 0; i < 10; i++)
        auditor.offer(i, 0, kBothDefects, prodResult(1, 1.0), 1);

    auto s = auditor.snapshot();
    EXPECT_EQ(s.sampled, 10u);
    EXPECT_EQ(s.enqueued, 2u);
    EXPECT_EQ(s.queueDrops, 8u);
    EXPECT_EQ(s.queueDepth, 2u);

    EXPECT_EQ(auditor.drainNow(), 2u);
    EXPECT_EQ(auditor.snapshot().completed, 2u);
}

TEST(AuditorTest, OversizeSyndromesAreCountedAndDropped)
{
    const uint32_t n = kAuditMaxDefects + 1;
    GlobalWeightTable gwt(
        n, std::vector<QWeight>(size_t{n} * n, 8),
        std::vector<double>(size_t{n} * n, 1.0),
        std::vector<uint64_t>(size_t{n} * n, 0));
    AccuracyAuditor auditor(gwt, testAuditConfig());

    std::vector<uint32_t> defects(n);
    for (uint32_t i = 0; i < n; i++)
        defects[i] = i;
    EXPECT_FALSE(auditor.offer(0, 0, defects, prodResult(0, 1.0), 0));

    auto s = auditor.snapshot();
    EXPECT_EQ(s.oversizeDrops, 1u);
    EXPECT_EQ(s.enqueued, 0u);
}

TEST(AuditorTest, RebindCarriesCountersToNewTable)
{
    GlobalWeightTable a = tinyGwt();
    // Same geometry, heavier direct pair (2.5 decades): the weight-1
    // production matching becomes an underrun there.
    GlobalWeightTable b(2, {16, 20, 20, 16}, {2.0, 2.5, 2.5, 2.0},
                        {1, 1, 1, 0});
    AccuracyAuditor auditor(a, testAuditConfig());

    auditor.offer(0, 0, kBothDefects, prodResult(1, 1.0), 1);
    auditor.drainNow();
    auditor.rebind(b);
    auditor.offer(1, 0, kBothDefects, prodResult(1, 2.5), 1);
    auditor.drainNow();

    auto s = auditor.snapshot();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.optimal, 2u);
    EXPECT_EQ(s.weightUnderruns, 0u);
}

TEST(AuditorTest, BackgroundPoolDrainsQueue)
{
    GlobalWeightTable gwt = tinyGwt();
    AuditConfig cfg = testAuditConfig();
    cfg.threads = 2;
    AccuracyAuditor auditor(gwt, cfg);
    auditor.start();
    for (uint64_t i = 0; i < 32; i++)
        auditor.offer(i, 0, kBothDefects, prodResult(1, 1.0), 1);
    auditor.stop();  // Joins the pool and drains the remainder.

    auto s = auditor.snapshot();
    EXPECT_EQ(s.completed, 32u);
    EXPECT_EQ(s.optimal, 32u);
    EXPECT_EQ(s.queueDrops, 0u);
}

TEST(AuditorTest, ObservableMismatchTriggersCaptureDir)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "audit_capture_dir";
    fs::remove_all(dir);
    fs::create_directories(dir);

    auto &fr = telemetry::FlightRecorder::global();
    fr.beginRun("{\"distance\":3}", "{\"name\":\"Astrea\"}");
    fr.setCaptureDir(dir);
    fr.setCaptureRateLimit(8, 0);
    telemetry::FlightRecorder::setGlobalEnabled(true);

    GlobalWeightTable gwt = tinyGwt();
    AccuracyAuditor auditor(gwt, testAuditConfig());
    DecodeResult dr = prodResult(0, 4.0);
    dr.latencyNs = 120.0;
    dr.cycles = 30;
    auditor.offer(5, 1, kBothDefects, dr, 1);
    auditor.drainNow();

    // Disarm before any assertion can bail out of the test.
    telemetry::FlightRecorder::setGlobalEnabled(false);
    fr.setCaptureDir("");

    EXPECT_EQ(auditor.snapshot().captures, 1u);
    const std::string path = dir + "/capture-000.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "capture file missing: " << path;
    std::ostringstream ss;
    ss << in.rdbuf();

    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(ss.str(), doc));
    EXPECT_EQ(doc["trigger"]["reason"].asString(), "audit_mismatch");
    EXPECT_EQ(doc["trigger"]["shot"].asUint(), 5u);
    ASSERT_FALSE(doc["records"].arr.empty());
    const telemetry::JsonValue &rec = doc["records"].arr.back();
    EXPECT_EQ(rec["shot"].asUint(), 5u);
    EXPECT_EQ(rec["cycles"].asUint(), 30u);
    EXPECT_TRUE(rec["audit"]["mismatch"].asBool(false));
    EXPECT_EQ(rec["audit"]["oracle"].asString(), "dp");
    EXPECT_DOUBLE_EQ(rec["audit"]["oracle_weight"].asNumber(0.0), 1.0);
    EXPECT_EQ(rec["audit"]["oracle_obs"].asUint(0), 1u);
}

// ---------------------------------------------------------------------------
// Oracle vs production decoders on real syndromes

TEST(AuditorTest, AstreaMatchingsAreOptimalOnRealSyndromes)
{
    // Astrea enumerates every perfect matching over quantized
    // effective weights, so for HW <= 10 the auditor must classify
    // every decode as optimal — this is the end-to-end statement the
    // production optimality gauge relies on.
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 2e-3;
    ExperimentContext ctx(cfg);
    auto decoder = makeDecoder("astrea", decoderOptionsFor(ctx));

    AccuracyAuditor auditor(ctx.gwt(), testAuditConfig());

    Rng rng(42);
    BitVec dets(ctx.circuit().numDetectors());
    BitVec obs(ctx.circuit().numObservables());
    DecodeResult dr;
    DecodeScratch scratch;
    size_t audited = 0, guard = 0;
    while (audited < 150 && ++guard < 500000) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        dr.reset();
        decoder->decodeInto(defects, dr, scratch);
        uint64_t actual = 0;
        for (auto o : obs.onesIndices())
            actual |= (1ull << o);
        if (auditor.offer(guard, 0, defects, dr, actual))
            audited++;
        if (audited % 32 == 0)
            auditor.drainNow();
    }
    ASSERT_GE(audited, 100u);
    auditor.drainNow();

    auto s = auditor.snapshot();
    EXPECT_EQ(s.completed, audited);
    // Weight-suboptimality or an underrun would be a real decoder (or
    // oracle) bug; observable mismatches are tolerated only as rare
    // degenerate ties (equal weight, different parity tie-break).
    EXPECT_EQ(s.suboptimal, 0u);
    EXPECT_EQ(s.weightUnderruns, 0u);
    EXPECT_GE(s.optimalityRate(), 0.98)
        << "mismatches=" << s.observableMismatches;
}

TEST(AuditorTest, MismatchCaptureReplaysAndNarratesDivergence)
{
    // End-to-end forensics loop: audit a genuinely suboptimal
    // production decoder (greedy) against the exact oracle until an
    // observable mismatch fires a capture, then replay the capture and
    // require (a) the production verdicts to reproduce exactly and
    // (b) the narration to include the oracle's side of the story.
    namespace fs = std::filesystem;
    const std::string dir = ::testing::TempDir() + "audit_replay_dir";
    fs::remove_all(dir);
    fs::create_directories(dir);

    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 6e-3;
    ExperimentContext ctx(cfg);
    auto decoder = makeDecoder("greedy", decoderOptionsFor(ctx));

    auto &fr = telemetry::FlightRecorder::global();
    fr.beginRun(experimentConfigJson(cfg),
                decoderDescriptionJson(*decoder));
    fr.setCaptureDir(dir);
    fr.setCaptureRateLimit(4, 0);
    telemetry::FlightRecorder::setGlobalEnabled(true);

    // Greedy reports exact-decade weights, so audit in that domain.
    AuditConfig acfg = testAuditConfig();
    acfg.quantizedWeights = false;
    AccuracyAuditor auditor(ctx.gwt(), acfg);

    Rng rng(11);
    BitVec dets(ctx.circuit().numDetectors());
    BitVec obs(ctx.circuit().numObservables());
    DecodeResult dr;
    DecodeScratch scratch;
    for (uint64_t s = 0;
         s < 40000 && auditor.snapshot().captures == 0; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty())
            continue;
        dr.reset();
        decoder->decodeInto(defects, dr, scratch);
        uint64_t actual = 0;
        for (auto o : obs.onesIndices())
            actual |= (1ull << o);
        auditor.offer(s, 0, defects, dr, actual);
        auditor.drainNow();
    }
    telemetry::FlightRecorder::setGlobalEnabled(false);
    fr.setCaptureDir("");

    ASSERT_GT(auditor.snapshot().captures, 0u)
        << "greedy never diverged from the oracle observable";

    ReplayCapture capture;
    std::string error;
    ASSERT_TRUE(
        loadCapture(dir + "/capture-000.json", capture, &error))
        << error;
    ASSERT_FALSE(capture.records.empty());
    EXPECT_TRUE(capture.records.back().auditMismatch);
    EXPECT_EQ(capture.triggerReason, "audit_mismatch");

    std::ostringstream narration;
    ReplayOptions opts;
    opts.verbose = true;
    ReplaySummary summary = replayCapture(capture, opts, narration);
    EXPECT_EQ(summary.mismatches, 0u) << narration.str();
    const std::string text = narration.str();
    EXPECT_NE(text.find("[trigger]"), std::string::npos) << text;
    EXPECT_NE(text.find("audit oracle (dp, exact weights)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("[observable mismatch]"), std::string::npos);
    EXPECT_NE(text.find("oracle matching (weight"), std::string::npos)
        << text;
}

// ---------------------------------------------------------------------------
// Decode service integration (schema v2 surfaces)

ServeConfig
auditedServeConfig()
{
    ServeConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 5e-3;  // HW-rich so audits actually occur.
    cfg.decoder = "astrea";
    cfg.workers = 1;
    cfg.seed = 7;
    cfg.auditRate = 1.0;
    cfg.auditQueue = 4096;
    return cfg;
}

TEST(DecodeServiceAuditTest, MetricsAndStatuszExposeAuditFamilies)
{
    DecodeServiceCore core(auditedServeConfig());
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    auto w = core.makeWorker(0);
    for (int i = 0; i < 2000; i++)
        core.decodeOnce(*w);
    core.audit().drainNow();

    auto s = core.audit().snapshot();
    EXPECT_GT(s.completed, 0u);
    EXPECT_EQ(s.queueDrops, 0u);

    const std::string text = core.metricsText();
    for (const char *family :
         {"# TYPE astrea_audit_enabled gauge",
          "# TYPE astrea_audit_completed_total counter",
          "# TYPE astrea_audit_optimality_rate gauge",
          "# TYPE astrea_audit_weight_gap_decades histogram",
          "# TYPE astrea_audit_queue_drops_total counter",
          "# TYPE astrea_audit_observable_mismatches_total counter"}) {
        EXPECT_NE(text.find(family), std::string::npos) << family;
    }
    EXPECT_NE(text.find("astrea_audit_optimality_rate{hw=\"all\"}"),
              std::string::npos);

    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(core.statuszJson(), doc));
    EXPECT_EQ(doc["schema_version"].asUint(), 5u);
    ASSERT_TRUE(doc.has("audit"));
    EXPECT_TRUE(doc["audit"]["enabled"].asBool(false));
    EXPECT_GT(doc["audit"]["completed"].asUint(0), 0u);
    EXPECT_EQ(doc["audit"]["queue_drops"].asUint(1), 0u);
    // Astrea within its supported HW is exhaustively weight-optimal,
    // so no audit may classify as suboptimal. Observable mismatches
    // can still (rarely) occur on degenerate ties — equal-weight
    // matchings with different logical parity, where Astrea's
    // tie-break differs from the oracle's — so the optimality rate is
    // bounded, not exactly 1.
    EXPECT_EQ(doc["audit"]["suboptimal"].asUint(1), 0u);
    EXPECT_GE(doc["audit"]["optimality_rate"].asNumber(0.0), 0.99);
}

TEST(DecodeServiceAuditTest, SoftwareDecoderAuditsInExactDomain)
{
    ServeConfig cfg = auditedServeConfig();
    cfg.decoder = "mwpm";
    DecodeServiceCore core(cfg);
    EXPECT_FALSE(core.audit().config().quantizedWeights);

    // The hardware decoders audit in the quantized domain.
    DecodeServiceCore hw(auditedServeConfig());
    EXPECT_TRUE(hw.audit().config().quantizedWeights);
}

} // namespace
} // namespace astrea
