/**
 * @file
 * Unit tests for the common utilities: RNG, bit vectors, statistics,
 * weight quantization, option parsing, and the fork-join helper.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/bitvec.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/weight.hh"

namespace astrea
{
namespace
{

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a() == b())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndRoughlyUniform)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; i++) {
        uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        counts[v]++;
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 200000; i++)
        hits += rng.bernoulli(0.01);
    EXPECT_NEAR(hits / 200000.0, 0.01, 0.002);
}

TEST(Rng, GeometricSkipMatchesBernoulliScan)
{
    // Skip-sampling a Bernoulli(p) stream must hit positions at rate p.
    const double p = 0.05;
    const uint64_t stream_len = 200000;
    Rng rng(13);
    uint64_t hits = 0;
    uint64_t pos = rng.geometricSkip(p);
    while (pos < stream_len) {
        hits++;
        uint64_t skip = rng.geometricSkip(p);
        if (skip == ~0ull)
            break;
        pos += skip + 1;
    }
    EXPECT_NEAR(static_cast<double>(hits) / stream_len, p, 0.005);
}

TEST(Rng, GeometricSkipEdgeCases)
{
    Rng rng(17);
    EXPECT_EQ(rng.geometricSkip(1.0), 0u);
    EXPECT_EQ(rng.geometricSkip(0.0), ~0ull);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng root(21);
    Rng a = root.split(0);
    Rng b = root.split(1);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a() == b())
            same++;
    }
    EXPECT_LT(same, 3);
}

// ------------------------------------------------------------- BitVec

TEST(BitVec, SetGetFlip)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_FALSE(v.get(0));
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_FALSE(v.flip(64));
    EXPECT_FALSE(v.get(64));
    EXPECT_TRUE(v.flip(65));
}

TEST(BitVec, PopcountAndOnes)
{
    BitVec v(200);
    std::set<uint32_t> expected{3, 63, 64, 127, 128, 199};
    for (auto i : expected)
        v.set(i);
    EXPECT_EQ(v.popcount(), expected.size());
    auto ones = v.onesIndices();
    EXPECT_EQ(std::set<uint32_t>(ones.begin(), ones.end()), expected);
    // Indices must come back sorted.
    for (size_t i = 1; i < ones.size(); i++)
        EXPECT_LT(ones[i - 1], ones[i]);
}

TEST(BitVec, XorAndEquality)
{
    BitVec a(100), b(100);
    a.set(5);
    a.set(70);
    b.set(70);
    b.set(80);
    a ^= b;
    EXPECT_TRUE(a.get(5));
    EXPECT_FALSE(a.get(70));
    EXPECT_TRUE(a.get(80));

    BitVec c(100);
    c.set(5);
    c.set(80);
    EXPECT_TRUE(a == c);
}

TEST(BitVec, ClearAndNone)
{
    BitVec v(70);
    EXPECT_TRUE(v.none());
    v.set(69);
    EXPECT_FALSE(v.none());
    v.clear();
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.size(), 70u);
}

TEST(BitVec, HashDiffersForDifferentContents)
{
    BitVec a(64), b(64);
    b.set(0);
    EXPECT_NE(a.hash(), b.hash());
    BitVec c(65);
    EXPECT_NE(a.hash(), c.hash());
}

TEST(BitVec, ToString)
{
    BitVec v(4);
    v.set(1);
    v.set(3);
    EXPECT_EQ(v.toString(), "0101");
}

// -------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats a, b, all;
    Rng rng(3);
    for (int i = 0; i < 1000; i++) {
        double x = rng.uniform() * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeIntoEmpty)
{
    RunningStats a, b;
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Histogram, AddAndQuery)
{
    Histogram h(10);
    h.add(0, 5);
    h.add(3);
    h.add(10);
    h.add(11, 2);  // Overflow.
    EXPECT_EQ(h.total(), 9u);
    EXPECT_EQ(h.at(0), 5u);
    EXPECT_EQ(h.at(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.frequency(0), 5.0 / 9.0);
    EXPECT_DOUBLE_EQ(h.tailFrequency(10), 2.0 / 9.0);
    EXPECT_DOUBLE_EQ(h.tailFrequency(2), 4.0 / 9.0);
    EXPECT_EQ(h.maxObserved(), 10u);
}

TEST(Histogram, Merge)
{
    Histogram a(5), b(5);
    a.add(1);
    b.add(1);
    b.add(4);
    a.merge(b);
    EXPECT_EQ(a.at(1), 2u);
    EXPECT_EQ(a.at(4), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(BinomialEstimate, WilsonIntervalBrackets)
{
    BinomialEstimate e{10, 1000};
    EXPECT_DOUBLE_EQ(e.pointEstimate(), 0.01);
    EXPECT_LT(e.lower95(), 0.01);
    EXPECT_GT(e.upper95(), 0.01);
    EXPECT_GT(e.lower95(), 0.0);
    EXPECT_LT(e.upper95(), 0.03);
}

TEST(BinomialEstimate, ZeroSuccesses)
{
    BinomialEstimate e{0, 1000};
    EXPECT_DOUBLE_EQ(e.pointEstimate(), 0.0);
    EXPECT_DOUBLE_EQ(e.lower95(), 0.0);
    EXPECT_GT(e.upper95(), 0.0);
    EXPECT_LT(e.upper95(), 0.01);
}

TEST(BinomialPmf, SumsToOne)
{
    double sum = 0.0;
    for (uint64_t k = 0; k <= 20; k++)
        sum += binomialPmf(20, 0.3, k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialPmf, KnownValues)
{
    EXPECT_NEAR(binomialPmf(4, 0.5, 2), 0.375, 1e-12);
    EXPECT_DOUBLE_EQ(binomialPmf(4, 0.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(4, 1.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(4, 0.5, 5), 0.0);
}

TEST(FormatProb, Scientific)
{
    EXPECT_EQ(formatProb(6e-9), "6.00e-09");
}

// ------------------------------------------------------------- weight

TEST(Weight, QuantizeRoundTrip)
{
    // Weight 6 decades = 1-in-a-million probability (paper Sec. 5.1).
    QWeight q = quantizeWeight(6.0);
    EXPECT_EQ(q, 6 * kWeightScale);
    EXPECT_DOUBLE_EQ(weightToDecades(q), 6.0);
}

TEST(Weight, QuantizeSaturates)
{
    EXPECT_EQ(quantizeWeight(1000.0), kInfiniteWeight);
    EXPECT_EQ(quantizeWeight(-1.0), 0);
}

TEST(Weight, ProbToDecades)
{
    EXPECT_NEAR(probToDecades(1e-6), 6.0, 1e-12);
    EXPECT_DOUBLE_EQ(probToDecades(1.0), 0.0);
    EXPECT_TRUE(std::isinf(probToDecades(0.0)));
}

TEST(Weight, AddWeightsSaturates)
{
    EXPECT_EQ(addWeights(5, 7), 12u);
    EXPECT_EQ(addWeights(kInfiniteWeightSum, 7), kInfiniteWeightSum);
    EXPECT_EQ(addWeights(3, kInfiniteWeightSum), kInfiniteWeightSum);
}

TEST(Weight, AddWeightsAtQuantizedCeiling)
{
    // The 8-bit sentinel kInfiniteWeight (255) is NOT infinite once
    // promoted to a WeightSum: sums of ceiling entries stay finite.
    // The 16-bit kernel tiles preserve this by storing 255 verbatim
    // (only the tile's own 0xFFFF ceiling means "no edge"), so kernel
    // accumulation must agree with these scalar semantics.
    const WeightSum ceiling = kInfiniteWeight;  // 255
    EXPECT_EQ(addWeights(ceiling, ceiling), 510u);
    EXPECT_EQ(addWeights(ceiling, 0), 255u);
    // Five ceiling-weight effective pairs — the worst finite HW-10
    // candidate — stay far below the kernels' 16-bit ceiling.
    WeightSum five = 0;
    for (int i = 0; i < 5; i++)
        five = addWeights(five, addWeights(ceiling, ceiling));
    EXPECT_EQ(five, 2550u);
    EXPECT_LT(five, uint32_t{0xFFFF});
    // Only the WeightSum sentinel itself is absorbing.
    EXPECT_EQ(addWeights(kInfiniteWeightSum, kInfiniteWeightSum),
              kInfiniteWeightSum);
    EXPECT_EQ(addWeights(kInfiniteWeightSum - 1, 1),
              kInfiniteWeightSum);
}

TEST(Weight, DecadesToQuantized)
{
    EXPECT_EQ(decadesToQuantized(7.0), 7u * kWeightScale);
    EXPECT_EQ(decadesToQuantized(-3.0), 0u);
}

// ---------------------------------------------------------------- cli

TEST(Options, ParseKeyValue)
{
    const char *argv[] = {"prog", "--shots=500", "--p=1e-3", "--flag"};
    Options o = Options::parse(4, const_cast<char **>(argv));
    EXPECT_EQ(o.getUint("shots", 0), 500u);
    EXPECT_DOUBLE_EQ(o.getDouble("p", 0.0), 1e-3);
    EXPECT_EQ(o.getString("flag", ""), "1");
    EXPECT_EQ(o.getInt("missing", -7), -7);
}

TEST(Options, EnvironmentFallback)
{
    setenv("ASTREA_TEST_KNOB", "1234", 1);
    Options o;
    EXPECT_EQ(o.getUint("test-knob", 0), 1234u);
    EXPECT_TRUE(o.has("test-knob"));
    unsetenv("ASTREA_TEST_KNOB");
    EXPECT_FALSE(o.has("test-knob"));
}

TEST(Options, ArgvWinsOverEnvironment)
{
    setenv("ASTREA_SHOTS", "1", 1);
    const char *argv[] = {"prog", "--shots=2"};
    Options o = Options::parse(2, const_cast<char **>(argv));
    EXPECT_EQ(o.getUint("shots", 0), 2u);
    unsetenv("ASTREA_SHOTS");
}

// -------------------------------------------------------- parallelFor

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> touched(1000);
    parallelFor(1000, 8, [&](unsigned, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; i++)
            touched[i]++;
    });
    for (auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, SingleWorkerRunsInline)
{
    uint64_t total = 0;
    parallelFor(100, 1, [&](unsigned w, uint64_t begin, uint64_t end) {
        EXPECT_EQ(w, 0u);
        total += end - begin;
    });
    EXPECT_EQ(total, 100u);
}

TEST(ParallelFor, EmptyRange)
{
    bool called = false;
    parallelFor(0, 4, [&](unsigned, uint64_t, uint64_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreWorkersThanWork)
{
    std::atomic<uint64_t> total{0};
    parallelFor(3, 16, [&](unsigned, uint64_t begin, uint64_t end) {
        total += end - begin;
    });
    EXPECT_EQ(total.load(), 3u);
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryAcceptedTask)
{
    std::atomic<uint64_t> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 1000; i++)
            ASSERT_TRUE(pool.enqueue([&] { ran++; }));
    }
    // Destructor = shutdown: every accepted task has finished.
    EXPECT_EQ(ran.load(), 1000u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks)
{
    std::atomic<uint64_t> ran{0};
    ThreadPool pool(2);
    for (int i = 0; i < 500; i++)
        ASSERT_TRUE(pool.enqueue([&] { ran++; }));
    pool.shutdown();
    EXPECT_EQ(ran.load(), 500u);
    EXPECT_EQ(pool.completedTasks(), 500u);
}

TEST(ThreadPoolTest, EnqueueAfterShutdownIsRejected)
{
    ThreadPool pool(2);
    pool.shutdown();
    bool ran = false;
    EXPECT_FALSE(pool.enqueue([&] { ran = true; }));
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent)
{
    ThreadPool pool(2);
    ASSERT_TRUE(pool.enqueue([] {}));
    pool.shutdown();
    pool.shutdown();  // Second call must be a no-op, not a crash.
    EXPECT_FALSE(pool.enqueue([] {}));
}

TEST(ThreadPoolTest, RacingEnqueueAndDestructionLosesNoTask)
{
    // The shutdown-ordering contract under race: producers hammer
    // enqueue() while the pool is destroyed. Every enqueue() must
    // return a definite verdict — true => the task runs before the
    // destructor returns, false => it never runs — with no hangs and
    // no lost tasks. Repeat to give the race a chance to land on the
    // boundary.
    for (int round = 0; round < 20; round++) {
        std::atomic<uint64_t> accepted{0};
        std::atomic<uint64_t> ran{0};
        std::atomic<bool> stop{false};

        ThreadPool pool(3);
        std::vector<std::thread> producers;
        for (int p = 0; p < 4; p++) {
            producers.emplace_back([&] {
                while (!stop.load(std::memory_order_relaxed)) {
                    if (pool.enqueue([&] { ran++; }))
                        accepted++;
                }
            });
        }

        // Let producers build up momentum, then shut down mid-flight
        // while they keep hammering enqueue().
        while (accepted.load() < 100) {
        }
        pool.shutdown();
        stop.store(true);
        for (auto &t : producers)
            t.join();

        EXPECT_EQ(ran.load(), accepted.load())
            << "round " << round
            << ": an accepted task was lost (or an unaccepted one "
               "ran) across shutdown";
    }
}

TEST(ThreadPoolTest, TasksEnqueuedFromTasksEitherRunOrAreRejected)
{
    // A task enqueuing follow-up work during drain must also get a
    // deterministic verdict; accepted follow-ups run too.
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; i++) {
            bool ok = pool.enqueue([&, i] {
                ran++;
                if (pool.enqueue([&] { ran++; }))
                    accepted++;
            });
            ASSERT_TRUE(ok);
            accepted++;
        }
    }
    EXPECT_EQ(ran.load(), accepted.load());
}

} // namespace
} // namespace astrea
