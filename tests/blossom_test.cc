/**
 * @file
 * Property tests for the blossom matcher: agreement with the exhaustive
 * enumerator and the bitmask DP on thousands of random instances, plus
 * hand-checked cases that exercise blossom formation and expansion.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "matching/blossom.hh"
#include "matching/dp_matcher.hh"
#include "matching/enumerator.hh"

namespace astrea
{
namespace
{

int64_t
matchingWeight(const std::vector<int> &mate,
               const std::function<int64_t(int, int)> &w)
{
    int64_t total = 0;
    for (int v = 0; v < static_cast<int>(mate.size()); v++) {
        if (mate[v] > v)
            total += w(v, mate[v]);
    }
    return total;
}

TEST(Blossom, EmptyGraph)
{
    auto mate = maxWeightMatching(3, {}, false);
    EXPECT_EQ(mate, (std::vector<int>{-1, -1, -1}));
}

TEST(Blossom, SingleEdge)
{
    auto mate = maxWeightMatching(2, {{0, 1, 5}}, false);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[1], 0);
}

TEST(Blossom, PrefersHeavierEdge)
{
    // Path 0-1-2: edges (0,1,2) and (1,2,3); only one can be matched.
    auto mate = maxWeightMatching(3, {{0, 1, 2}, {1, 2, 3}}, false);
    EXPECT_EQ(mate[0], -1);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[2], 1);
}

TEST(Blossom, PrefersTwoEdgesOverOneHeavy)
{
    // Path 0-1-2-3: middle edge weight 5, ends weight 3 each; taking
    // both ends (6) beats the middle (5).
    auto mate = maxWeightMatching(
        4, {{0, 1, 3}, {1, 2, 5}, {2, 3, 3}}, false);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[2], 3);
}

TEST(Blossom, MaxCardinalityForcesMatch)
{
    // Without max-cardinality, a light middle edge may be dropped; with
    // it, cardinality comes first.
    auto free_mate = maxWeightMatching(
        4, {{0, 1, 10}, {1, 2, 1}, {2, 3, 10}}, false);
    EXPECT_EQ(free_mate[0], 1);
    EXPECT_EQ(free_mate[2], 3);

    auto mate = maxWeightMatching(
        4, {{1, 2, 1}}, true);
    EXPECT_EQ(mate[1], 2);
}

TEST(Blossom, OddCycleFormsBlossom)
{
    // Triangle: only one edge can be matched; pick the heaviest.
    auto mate = maxWeightMatching(
        3, {{0, 1, 6}, {1, 2, 7}, {0, 2, 5}}, false);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[0], -1);
}

TEST(Blossom, ClassicNestedBlossomCase)
{
    // From van Rantwijk's test suite (create/expand nested blossoms).
    std::vector<MatchEdge> edges{
        {1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18},
        {3, 5, 18}, {4, 5, 13}, {4, 7, 7},  {5, 6, 7}};
    auto mate = maxWeightMatching(9, edges, false);
    // Known optimum: (1,8), (2,3), (4,7), (5,6).
    EXPECT_EQ(mate[1], 8);
    EXPECT_EQ(mate[2], 3);
    EXPECT_EQ(mate[4], 7);
    EXPECT_EQ(mate[5], 6);
}

TEST(Blossom, SBlossomRelabelCase)
{
    // Another classic: augmenting through an expanded blossom.
    std::vector<MatchEdge> edges{
        {1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
        {1, 6, 30}, {3, 9, 35}, {4, 8, 35}, {5, 7, 26}, {9, 10, 5}};
    auto mate = maxWeightMatching(11, edges, false);
    EXPECT_EQ(mate[1], 6);
    EXPECT_EQ(mate[2], 3);
    EXPECT_EQ(mate[4], 8);
    EXPECT_EQ(mate[5], 7);
    EXPECT_EQ(mate[9], 10);
}

TEST(Blossom, NegativeBehaviorViaLowWeights)
{
    // Weight 0 edges are legal and only taken under max-cardinality.
    auto mate = maxWeightMatching(2, {{0, 1, 0}}, false);
    // Zero gain: matching or not are both optimal; accept either, but
    // the matching must be consistent.
    if (mate[0] != -1)
        EXPECT_EQ(mate[mate[0]], 0);

    auto forced = maxWeightMatching(2, {{0, 1, 0}}, true);
    EXPECT_EQ(forced[0], 1);
}

/** Random complete-graph instances, cross-checked with brute force. */
class BlossomRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BlossomRandomTest, PerfectMatchingMatchesExhaustive)
{
    const int n = GetParam();
    Rng rng(1000 + n);
    for (int trial = 0; trial < 60; trial++) {
        std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n));
        for (int i = 0; i < n; i++) {
            for (int j = i + 1; j < n; j++) {
                w[i][j] = w[j][i] =
                    static_cast<int64_t>(rng.uniformInt(100));
            }
        }
        auto weight_fn = [&](int i, int j) { return w[i][j]; };
        auto mate = minWeightPerfectMatching(n, weight_fn);

        // Every vertex matched, consistently.
        for (int v = 0; v < n; v++) {
            ASSERT_GE(mate[v], 0);
            ASSERT_EQ(mate[mate[v]], v);
        }
        int64_t blossom_w = matchingWeight(mate, weight_fn);

        // Exhaustive optimum for comparison.
        PairList best;
        double exhaustive_w = exhaustiveMinWeightMatching(
            n,
            [&](int i, int j) { return static_cast<double>(w[i][j]); },
            best);
        EXPECT_EQ(blossom_w, static_cast<int64_t>(exhaustive_w))
            << "n=" << n << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(SmallEven, BlossomRandomTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(BlossomRandom, GeneralMatchingBeatsGreedyOnSparseGraphs)
{
    // Random sparse graphs: verify optimality against brute force over
    // all matchings (small n).
    Rng rng(77);
    for (int trial = 0; trial < 40; trial++) {
        const int n = 7;
        std::vector<MatchEdge> edges;
        for (int i = 0; i < n; i++) {
            for (int j = i + 1; j < n; j++) {
                if (rng.bernoulli(0.5)) {
                    edges.push_back(
                        {i, j,
                         static_cast<int64_t>(rng.uniformInt(50)) + 1});
                }
            }
        }
        auto mate = maxWeightMatching(n, edges, false);
        int64_t got = 0;
        for (int v = 0; v < n; v++) {
            if (mate[v] > v) {
                for (const auto &e : edges) {
                    if ((e.u == v && e.v == mate[v]) ||
                        (e.v == v && e.u == mate[v])) {
                        got += e.weight;
                        break;
                    }
                }
            }
        }

        // Brute force over all subsets of edges that form matchings.
        int64_t best = 0;
        const size_t m = edges.size();
        ASSERT_LT(m, 22u);
        for (size_t mask = 0; mask < (1u << m); mask++) {
            int used = 0;
            int64_t total = 0;
            bool ok = true;
            for (size_t k = 0; k < m && ok; k++) {
                if (!(mask & (1u << k)))
                    continue;
                if (used & (1 << edges[k].u) ||
                    used & (1 << edges[k].v)) {
                    ok = false;
                } else {
                    used |= (1 << edges[k].u) | (1 << edges[k].v);
                    total += edges[k].weight;
                }
            }
            if (ok)
                best = std::max(best, total);
        }
        EXPECT_EQ(got, best) << "trial " << trial;
    }
}

TEST(BlossomBoundary, DuplicationMatchesDpWithBoundary)
{
    // The decoder's boundary construction (n defects + n boundary
    // copies) must give the same optimum as the DP that allows
    // arbitrary boundary matches.
    Rng rng(99);
    for (int trial = 0; trial < 60; trial++) {
        const int n = 2 + static_cast<int>(rng.uniformInt(9));  // 2..10
        std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n));
        std::vector<int64_t> wb(n);
        for (int i = 0; i < n; i++) {
            wb[i] = static_cast<int64_t>(rng.uniformInt(60)) + 1;
            for (int j = i + 1; j < n; j++) {
                w[i][j] = w[j][i] =
                    static_cast<int64_t>(rng.uniformInt(60)) + 1;
            }
        }

        constexpr int64_t kBig = 1ll << 30;
        auto dup_weight = [&](int i, int j) -> int64_t {
            bool ir = i < n, jr = j < n;
            if (ir && jr)
                return w[i][j];
            if (!ir && !jr)
                return 0;
            int real = ir ? i : j;
            int copy = (ir ? j : i) - n;
            return (copy == real) ? wb[real] : kBig;
        };
        auto mate = minWeightPerfectMatching(2 * n, dup_weight);
        int64_t blossom_total = 0;
        for (int v = 0; v < n; v++) {
            if (mate[v] < n) {
                if (v < mate[v])
                    blossom_total += w[v][mate[v]];
            } else {
                ASSERT_EQ(mate[v] - n, v);
                blossom_total += wb[v];
            }
        }

        MatchingSolution dp = dpMatchWithBoundary(
            n,
            [&](int i, int j) { return static_cast<double>(w[i][j]); },
            [&](int i) { return static_cast<double>(wb[i]); });
        EXPECT_EQ(blossom_total,
                  static_cast<int64_t>(std::llround(dp.totalWeight)))
            << "trial " << trial << " n=" << n;
    }
}

TEST(Blossom, RejectsOddPerfectMatching)
{
    EXPECT_DEATH(minWeightPerfectMatching(
                     3, [](int, int) { return int64_t{1}; }),
                 "even");
}

TEST(Blossom, RejectsBadEdges)
{
    EXPECT_DEATH(maxWeightMatching(2, {{0, 0, 1}}, false), "bad");
    EXPECT_DEATH(maxWeightMatching(2, {{0, 5, 1}}, false), "bad");
}

TEST(Blossom, LargeRandomInstanceStressTest)
{
    // d = 9, p = 1e-3 worst cases reach ~60 nodes with boundary
    // duplication; make sure a complete graph that size solves and
    // verifies (verifyOptimum runs internally).
    const int n = 60;
    Rng rng(123);
    std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n));
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            w[i][j] = w[j][i] =
                static_cast<int64_t>(rng.uniformInt(1000000));
        }
    }
    auto mate = minWeightPerfectMatching(
        n, [&](int i, int j) { return w[i][j]; });
    for (int v = 0; v < n; v++) {
        ASSERT_GE(mate[v], 0);
        ASSERT_EQ(mate[mate[v]], v);
    }
}

} // namespace
} // namespace astrea
