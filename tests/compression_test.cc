/**
 * @file
 * Tests for the syndrome codecs (paper Sec. 7.6): lossless round-trip
 * on random and sampled syndromes, fallback behavior on dense inputs,
 * and the compression gains on real sparse syndromes.
 */

#include <gtest/gtest.h>

#include "compression/syndrome_codec.hh"
#include "harness/memory_experiment.hh"

namespace astrea
{
namespace
{

BitVec
fromIndices(uint32_t n, const std::vector<uint32_t> &ones)
{
    BitVec v(n);
    for (auto i : ones)
        v.set(i);
    return v;
}

class CodecRoundTrip
    : public ::testing::TestWithParam<SyndromeCodec>
{
};

TEST_P(CodecRoundTrip, EmptySyndrome)
{
    BitVec v(192);
    auto enc = encodeSyndrome(v, GetParam());
    EXPECT_TRUE(decodeSyndrome(enc, 192) == v);
}

TEST_P(CodecRoundTrip, SingleBitEachPosition)
{
    const uint32_t n = 100;
    for (uint32_t i = 0; i < n; i += 7) {
        BitVec v = fromIndices(n, {i});
        auto enc = encodeSyndrome(v, GetParam());
        EXPECT_TRUE(decodeSyndrome(enc, n) == v) << "bit " << i;
    }
}

TEST_P(CodecRoundTrip, RandomSyndromes)
{
    Rng rng(11);
    for (int trial = 0; trial < 200; trial++) {
        uint32_t n = 16 + static_cast<uint32_t>(rng.uniformInt(500));
        BitVec v(n);
        // Mix of sparse and dense densities.
        double density = (trial % 4 == 0) ? 0.4 : 0.02;
        for (uint32_t i = 0; i < n; i++) {
            if (rng.bernoulli(density))
                v.set(i);
        }
        auto enc = encodeSyndrome(v, GetParam());
        EXPECT_TRUE(decodeSyndrome(enc, n) == v)
            << "trial " << trial << " n=" << n;
    }
}

TEST_P(CodecRoundTrip, NeverLargerThanRawPlusTag)
{
    Rng rng(13);
    for (int trial = 0; trial < 100; trial++) {
        uint32_t n = 400;
        BitVec v(n);
        for (uint32_t i = 0; i < n; i++) {
            if (rng.bernoulli(0.5))
                v.set(i);
        }
        auto enc = encodeSyndrome(v, GetParam());
        EXPECT_LE(enc.size(), n / 8 + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTrip,
                         ::testing::Values(SyndromeCodec::Raw,
                                           SyndromeCodec::Sparse,
                                           SyndromeCodec::RunLength));

TEST(Codec, SparseBeatsRawOnTypicalSyndromes)
{
    // Real d = 7, p = 1e-3 syndromes are sparse; the sparse codec
    // should compress them several-fold on average.
    ExperimentConfig cfg;
    cfg.distance = 7;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);

    Rng rng(17);
    BitVec dets, obs;
    CompressionStats sparse_stats, rle_stats;
    for (int s = 0; s < 3000; s++) {
        ctx.sampler().sample(rng, dets, obs);
        sparse_stats.add(
            static_cast<uint32_t>(dets.size()),
            encodeSyndrome(dets, SyndromeCodec::Sparse).size());
        rle_stats.add(
            static_cast<uint32_t>(dets.size()),
            encodeSyndrome(dets, SyndromeCodec::RunLength).size());

        // And every encoding round-trips.
        auto enc = encodeSyndrome(dets, SyndromeCodec::Sparse);
        ASSERT_TRUE(decodeSyndrome(
                        enc, static_cast<uint32_t>(dets.size())) ==
                    dets);
    }
    EXPECT_GT(sparse_stats.ratio(), 3.0);
    EXPECT_GT(rle_stats.ratio(), 2.0);
}

TEST(Codec, LongZeroRunsUseEscape)
{
    // A bit beyond position 255 exercises the run-length escape.
    BitVec v = fromIndices(400, {0, 300, 399});
    auto enc = encodeSyndrome(v, SyndromeCodec::RunLength);
    EXPECT_TRUE(decodeSyndrome(enc, 400) == v);
}

TEST(Codec, WideSparseIndices)
{
    // Syndromes longer than 256 bits need 2-byte sparse indices.
    BitVec v = fromIndices(400, {1, 257, 399});
    auto enc = encodeSyndrome(v, SyndromeCodec::Sparse);
    EXPECT_TRUE(decodeSyndrome(enc, 400) == v);
}

TEST(Codec, StatsAccumulate)
{
    CompressionStats stats;
    stats.add(80, 4);
    stats.add(80, 7);
    EXPECT_EQ(stats.syndromes, 2u);
    EXPECT_EQ(stats.rawBytes, 22u);  // 2 * (10 + 1).
    EXPECT_EQ(stats.encodedBytes, 11u);
    EXPECT_DOUBLE_EQ(stats.ratio(), 2.0);
    EXPECT_DOUBLE_EQ(stats.meanEncodedBytes(), 5.5);
}

TEST(Codec, TransmissionTime)
{
    // 10 bytes at 10 MBps = 1 us.
    EXPECT_DOUBLE_EQ(transmissionTimeNs(10.0, 10.0), 1000.0);
    EXPECT_DOUBLE_EQ(transmissionTimeNs(10.0, 0.0), 0.0);
}

TEST(Codec, RejectsCorruptBuffer)
{
    EXPECT_DEATH(decodeSyndrome({}, 16), "empty");
    EXPECT_DEATH(decodeSyndrome({99}, 16), "unknown");
}

TEST(Codec, IntoVariantsRoundTripWithoutReallocation)
{
    // The wire path's buffer-reusing entry points: encodeSyndromeInto
    // appends into a caller vector, tryDecodeSyndromeInto fills a
    // caller BitVec and reports failure instead of aborting.
    Rng rng(23);
    std::vector<uint8_t> enc;
    BitVec out;
    for (int trial = 0; trial < 200; trial++) {
        uint32_t n = 16 + static_cast<uint32_t>(rng.uniformInt(500));
        BitVec v(n);
        double density = (trial % 5 == 0) ? 0.4 : 0.02;
        for (uint32_t i = 0; i < n; i++) {
            if (rng.bernoulli(density))
                v.set(i);
        }
        for (SyndromeCodec codec :
             {SyndromeCodec::Raw, SyndromeCodec::Sparse,
              SyndromeCodec::RunLength}) {
            enc.clear();
            encodeSyndromeInto(v, codec, enc);
            EXPECT_EQ(enc, encodeSyndrome(v, codec));
            ASSERT_TRUE(
                tryDecodeSyndromeInto(enc.data(), enc.size(), n, out));
            EXPECT_TRUE(out == v) << "trial " << trial;
        }
    }
}

TEST(Codec, TryDecodeRejectsTruncationWithoutCrashing)
{
    // Every proper prefix of a valid encoding must be rejected (or,
    // for self-delimiting cases, still decode to a valid bit vector)
    // without crashing or reading past the buffer.
    BitVec v = fromIndices(400, {1, 37, 257, 399});
    BitVec out;
    for (SyndromeCodec codec :
         {SyndromeCodec::Raw, SyndromeCodec::Sparse,
          SyndromeCodec::RunLength}) {
        auto enc = encodeSyndrome(v, codec);
        for (size_t cut = 0; cut < enc.size(); cut++) {
            const bool ok =
                tryDecodeSyndromeInto(enc.data(), cut, 400, out);
            if (ok)
                EXPECT_EQ(out.size(), 400u);
        }
        // The full buffer still decodes after all the truncated
        // attempts reused `out`.
        ASSERT_TRUE(
            tryDecodeSyndromeInto(enc.data(), enc.size(), 400, out));
        EXPECT_TRUE(out == v);
    }
    // Zero-length and unknown-tag buffers fail cleanly (the fatal
    // decodeSyndrome path death-tests these; the wire path must not
    // die on attacker-controlled bytes).
    EXPECT_FALSE(tryDecodeSyndromeInto(nullptr, 0, 16, out));
    const uint8_t junk[] = {99, 1, 2};
    EXPECT_FALSE(tryDecodeSyndromeInto(junk, sizeof(junk), 16, out));
}

TEST(Codec, TryDecodeSurvivesBitFlipFuzz)
{
    // Flip every bit of every codec's encoding of a real-ish
    // syndrome: each mutation must either decode to SOME valid
    // n-bit vector or return false — never crash, abort or over-read.
    BitVec v = fromIndices(360, {3, 17, 100, 255, 256, 359});
    BitVec out;
    for (SyndromeCodec codec :
         {SyndromeCodec::Raw, SyndromeCodec::Sparse,
          SyndromeCodec::RunLength}) {
        auto enc = encodeSyndrome(v, codec);
        size_t accepted = 0;
        for (size_t bit = 0; bit < enc.size() * 8; bit++) {
            auto mutated = enc;
            mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
            if (tryDecodeSyndromeInto(mutated.data(), mutated.size(),
                                      360, out)) {
                accepted++;
                EXPECT_EQ(out.size(), 360u);
            }
        }
        // Sanity: the fuzz actually rejected something (a codec that
        // accepts arbitrary bytes validates nothing).
        EXPECT_LT(accepted, enc.size() * 8)
            << "codec " << static_cast<int>(codec);
    }
}

} // namespace
} // namespace astrea
