/**
 * @file
 * Kernel parity suite: the AVX-512, AVX2 and scalar
 * candidate-evaluation kernels must agree bit-for-bit with each other
 * and with the legacy enumerator-driven evaluation — minimum weight, winning row (hence
 * winning pair set) and reconstructed observable mask — over seeded
 * random weight tiles including infinite entries and values deep in
 * the 16-bit saturation range. Runs under the sanitizer CI jobs like
 * every other test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "astrea/lwt_tile.hh"
#include "astrea/matching_tables.hh"
#include "astrea/simd_kernel.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "matching/enumerator.hh"

namespace astrea
{
namespace
{

/** Scoped setenv that restores the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        if (prev != nullptr) {
            had_ = true;
            prev_ = prev;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string prev_;
};

/**
 * Legacy-style reference: walk the canonical enumerator and evaluate
 * each matching over the tile with saturating 16-bit-domain sums,
 * keeping the first minimum.
 */
KernelMatch
referenceMatch16(int m, const int32_t *tile)
{
    KernelMatch best;
    uint32_t row = 0;
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        uint32_t sum = 0;
        for (auto [i, j] : pl)
            sum += static_cast<uint32_t>(tile[i * m + j]);
        if (sum > kInfiniteTileWeight)
            sum = kInfiniteTileWeight;
        if (sum < best.weight) {
            best.weight = sum;
            best.row = row;
        }
        row++;
    });
    return best;
}

/** The winning pair set of a table row, for set-level comparison. */
std::vector<std::pair<int, int>>
rowPairs(const MatchingTable &table, uint32_t row)
{
    std::vector<std::pair<int, int>> pairs;
    for (int k = 0; k < table.pairsPerRow(); k++)
        pairs.push_back(table.pairAt(row, k));
    return pairs;
}

/** XOR of per-pair observable masks along a table row. */
uint64_t
rowObs(const MatchingTable &table, uint32_t row,
       const std::vector<uint64_t> &obs, int m)
{
    uint64_t mask = 0;
    for (int k = 0; k < table.pairsPerRow(); k++) {
        auto [i, j] = table.pairAt(row, k);
        mask ^= obs[static_cast<size_t>(i) * m + j];
    }
    return mask;
}

/**
 * Fill a tile with seeded random weights: mostly realistic quantized
 * effective weights (0..510), a slice of large values near the 16-bit
 * ceiling to exercise saturation, and a slice of infinite entries.
 */
void
randomTile(Rng &rng, int m, std::vector<int32_t> &tile,
           std::vector<uint64_t> &obs)
{
    tile.assign(static_cast<size_t>(m) * m,
                static_cast<int32_t>(kInfiniteTileWeight));
    obs.assign(static_cast<size_t>(m) * m, 0);
    for (int i = 0; i < m; i++) {
        for (int j = i + 1; j < m; j++) {
            const double cls = rng.uniform();
            int32_t w;
            if (cls < 0.70)
                w = static_cast<int32_t>(rng.uniformInt(511));
            else if (cls < 0.85)
                w = static_cast<int32_t>(rng.uniformInt(0xFFFF));
            else
                w = static_cast<int32_t>(kInfiniteTileWeight);
            const uint64_t o = rng();
            tile[static_cast<size_t>(i) * m + j] = w;
            tile[static_cast<size_t>(j) * m + i] = w;
            obs[static_cast<size_t>(i) * m + j] = o;
            obs[static_cast<size_t>(j) * m + i] = o;
        }
    }
}

class KernelParityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelParityTest, KernelsMatchLegacyEnumerator)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    Rng rng(0xa57ea000u + static_cast<uint64_t>(m));

    std::vector<int32_t> tile;
    std::vector<uint64_t> obs;
    const bool have_avx2 = cpuHasAvx2();
    const bool have_avx512 = cpuHasAvx512();
    for (int trial = 0; trial < 1000; trial++) {
        randomTile(rng, m, tile, obs);

        const KernelMatch ref = referenceMatch16(m, tile.data());
        const KernelMatch scalar =
            matchTile16(table, tile.data(), KernelKind::kScalar);

        ASSERT_EQ(scalar.weight, ref.weight) << "trial " << trial;
        if (ref.weight < kInfiniteTileWeight) {
            ASSERT_EQ(scalar.row, ref.row) << "trial " << trial;
            EXPECT_EQ(rowPairs(table, scalar.row),
                      rowPairs(table, ref.row));
            EXPECT_EQ(rowObs(table, scalar.row, obs, m),
                      rowObs(table, ref.row, obs, m));
        }

        if (have_avx2) {
            const KernelMatch simd =
                matchTile16(table, tile.data(), KernelKind::kAvx2);
            ASSERT_EQ(simd.weight, ref.weight) << "trial " << trial;
            if (ref.weight < kInfiniteTileWeight) {
                ASSERT_EQ(simd.row, ref.row) << "trial " << trial;
                EXPECT_EQ(rowObs(table, simd.row, obs, m),
                          rowObs(table, ref.row, obs, m));
            }
        }

        if (have_avx512) {
            const KernelMatch wide =
                matchTile16(table, tile.data(), KernelKind::kAvx512);
            ASSERT_EQ(wide.weight, ref.weight) << "trial " << trial;
            if (ref.weight < kInfiniteTileWeight) {
                ASSERT_EQ(wide.row, ref.row) << "trial " << trial;
                EXPECT_EQ(rowObs(table, wide.row, obs, m),
                          rowObs(table, ref.row, obs, m));
            }
        }
    }
}

TEST_P(KernelParityTest, AllInfiniteTileReportsInfinity)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(
        static_cast<size_t>(m) * m,
        static_cast<int32_t>(kInfiniteTileWeight));

    EXPECT_EQ(matchTile16(table, tile.data(), KernelKind::kScalar)
                  .weight,
              kInfiniteTileWeight);
    if (cpuHasAvx2()) {
        EXPECT_EQ(matchTile16(table, tile.data(), KernelKind::kAvx2)
                      .weight,
                  kInfiniteTileWeight);
    }
    if (cpuHasAvx512()) {
        EXPECT_EQ(matchTile16(table, tile.data(), KernelKind::kAvx512)
                      .weight,
                  kInfiniteTileWeight);
    }
}

TEST_P(KernelParityTest, EqualWeightsBreakTiesToFirstRow)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(static_cast<size_t>(m) * m, 3);
    tile[0] = static_cast<int32_t>(kInfiniteTileWeight);
    for (int i = 0; i < m; i++)
        tile[static_cast<size_t>(i) * m + i] =
            static_cast<int32_t>(kInfiniteTileWeight);

    const KernelMatch scalar =
        matchTile16(table, tile.data(), KernelKind::kScalar);
    EXPECT_EQ(scalar.row, 0u);
    EXPECT_EQ(scalar.weight, 3u * (m / 2));
    if (cpuHasAvx2()) {
        const KernelMatch simd =
            matchTile16(table, tile.data(), KernelKind::kAvx2);
        EXPECT_EQ(simd.row, 0u);
        EXPECT_EQ(simd.weight, 3u * (m / 2));
    }
    if (cpuHasAvx512()) {
        const KernelMatch wide =
            matchTile16(table, tile.data(), KernelKind::kAvx512);
        EXPECT_EQ(wide.row, 0u);
        EXPECT_EQ(wide.weight, 3u * (m / 2));
    }
}

/**
 * Both lane-major bucket entry points must be bit-identical — weight
 * AND winning row — to per-lane matchTile16, across every supported
 * tier: matchTileLanes over lane-contiguous tiles and matchTileLanesT
 * over the transposed (entry-major) layout the SoA block uses for
 * small buckets. The odd lane count exercises the partial tail group;
 * the transposed buffer is padded to a full vector group of lanes
 * (stale storage there must never leak into live results).
 */
TEST_P(KernelParityTest, LaneMajorKernelsMatchPerLane)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    const size_t stride = static_cast<size_t>(m) * m;
    Rng rng(0x1a9e0000u + static_cast<uint64_t>(m));

    const uint32_t lanes = 19;
    const size_t entry_stride = 32;  // Padded past 19 like the block.
    std::vector<int32_t> tiles(lanes * stride);
    std::vector<int32_t> tiles_t(stride * entry_stride, -7);
    std::vector<int32_t> one;
    std::vector<uint64_t> obs;
    for (uint32_t l = 0; l < lanes; l++) {
        randomTile(rng, m, one, obs);
        std::copy(one.begin(), one.end(),
                  tiles.begin() + static_cast<size_t>(l) * stride);
        for (size_t e = 0; e < stride; e++)
            tiles_t[e * entry_stride + l] = one[e];
    }

    std::vector<KernelMatch> expect(lanes);
    for (uint32_t l = 0; l < lanes; l++)
        expect[l] = matchTile16(table, tiles.data() + l * stride,
                                KernelKind::kScalar);

    std::vector<KernelKind> kinds = {KernelKind::kScalar};
    if (cpuHasAvx2())
        kinds.push_back(KernelKind::kAvx2);
    if (cpuHasAvx512())
        kinds.push_back(KernelKind::kAvx512);
    for (KernelKind kind : kinds) {
        std::vector<KernelMatch> got(lanes);
        matchTileLanes(table, tiles.data(), lanes, stride,
                       got.data(), kind);
        std::vector<KernelMatch> got_t(lanes);
        matchTileLanesT(table, tiles_t.data(), lanes, entry_stride,
                        got_t.data(), kind);
        for (uint32_t l = 0; l < lanes; l++) {
            ASSERT_EQ(got[l].weight, expect[l].weight)
                << kernelKindName(kind) << " lane " << l;
            ASSERT_EQ(got_t[l].weight, expect[l].weight)
                << kernelKindName(kind) << " lane " << l
                << " (transposed)";
            if (expect[l].weight < kInfiniteTileWeight) {
                ASSERT_EQ(got[l].row, expect[l].row)
                    << kernelKindName(kind) << " lane " << l;
                ASSERT_EQ(got_t[l].row, expect[l].row)
                    << kernelKindName(kind) << " lane " << l
                    << " (transposed)";
            }
        }
    }
}

TEST_P(KernelParityTest, LaneMajorKernelBreaksTiesToFirstRow)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    const size_t stride = static_cast<size_t>(m) * m;

    // Every candidate row sums identically in every lane: the first
    // row must win in each lane, exactly like the scalar loop.
    const uint32_t lanes = 16;
    const size_t entry_stride = 16;
    std::vector<int32_t> tiles_t(stride * entry_stride, 3);
    for (uint32_t l = 0; l < lanes; l++)
        for (int i = 0; i < m; i++)
            tiles_t[(static_cast<size_t>(i) * m + i) * entry_stride +
                    l] = static_cast<int32_t>(kInfiniteTileWeight);

    std::vector<KernelKind> kinds = {KernelKind::kScalar};
    if (cpuHasAvx2())
        kinds.push_back(KernelKind::kAvx2);
    if (cpuHasAvx512())
        kinds.push_back(KernelKind::kAvx512);
    for (KernelKind kind : kinds) {
        std::vector<KernelMatch> got(lanes);
        matchTileLanesT(table, tiles_t.data(), lanes, entry_stride,
                        got.data(), kind);
        for (uint32_t l = 0; l < lanes; l++) {
            EXPECT_EQ(got[l].row, 0u)
                << kernelKindName(kind) << " lane " << l;
            EXPECT_EQ(got[l].weight, 3u * (m / 2))
                << kernelKindName(kind) << " lane " << l;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelParityTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(KernelSaturation, SumsClampToTheInfiniteCeiling)
{
    // Two large finite weights whose sum exceeds 16 bits must behave
    // as "no edge": the kernel may not wrap around and report a small
    // winning weight.
    const int m = 4;
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(
        static_cast<size_t>(m) * m,
        static_cast<int32_t>(kInfiniteTileWeight));
    // Matching {(0,1), (2,3)} saturates; {(0,2), (1,3)} stays finite.
    tile[0 * m + 1] = 0x9000;
    tile[2 * m + 3] = 0x9000;
    tile[0 * m + 2] = 0x7000;
    tile[1 * m + 3] = 0x7000;

    const KernelMatch ref = referenceMatch16(m, tile.data());
    const KernelMatch scalar =
        matchTile16(table, tile.data(), KernelKind::kScalar);
    EXPECT_EQ(scalar.weight, 0xE000u);
    EXPECT_EQ(scalar.weight, ref.weight);
    EXPECT_EQ(scalar.row, ref.row);
    EXPECT_EQ(rowPairs(table, scalar.row),
              (std::vector<std::pair<int, int>>{{0, 2}, {1, 3}}));
    if (cpuHasAvx2()) {
        const KernelMatch simd =
            matchTile16(table, tile.data(), KernelKind::kAvx2);
        EXPECT_EQ(simd.weight, ref.weight);
        EXPECT_EQ(simd.row, ref.row);
    }
    if (cpuHasAvx512()) {
        const KernelMatch wide =
            matchTile16(table, tile.data(), KernelKind::kAvx512);
        EXPECT_EQ(wide.weight, ref.weight);
        EXPECT_EQ(wide.row, ref.row);
    }
}

TEST(KernelMatchTile32, AgreesWithAddWeightsSemantics)
{
    // Full-width evaluation: kInfiniteWeightSum entries poison any
    // candidate touching them, and sums well beyond 16 bits survive.
    for (int m : {2, 4, 6, 8, 10}) {
        const MatchingTable &table = MatchingTable::forNodes(m);
        Rng rng(0xbeef0000u + static_cast<uint64_t>(m));
        std::vector<WeightSum> tile;
        for (int trial = 0; trial < 200; trial++) {
            tile.assign(static_cast<size_t>(m) * m,
                        kInfiniteWeightSum);
            for (int i = 0; i < m; i++)
                for (int j = i + 1; j < m; j++)
                    tile[static_cast<size_t>(i) * m + j] =
                        rng.uniform() < 0.15
                            ? kInfiniteWeightSum
                            : static_cast<WeightSum>(
                                  rng.uniformInt(1u << 20));

            KernelMatch ref;
            ref.weight = kInfiniteWeightSum;
            uint32_t row = 0;
            forEachPerfectMatchingT(m, [&](const PairList &pl) {
                WeightSum sum = 0;
                for (auto [i, j] : pl)
                    sum = addWeights(
                        sum, tile[static_cast<size_t>(i) * m + j]);
                if (sum < ref.weight) {
                    ref.weight = sum;
                    ref.row = row;
                }
                row++;
            });

            const KernelMatch got = matchTile32(table, tile.data());
            ASSERT_EQ(got.weight, ref.weight)
                << "m " << m << " trial " << trial;
            if (ref.weight != kInfiniteWeightSum)
                ASSERT_EQ(got.row, ref.row)
                    << "m " << m << " trial " << trial;

            if (cpuHasAvx512()) {
                const KernelMatch wide = matchTile32(
                    table, tile.data(), KernelKind::kAvx512);
                ASSERT_EQ(wide.weight, ref.weight)
                    << "m " << m << " trial " << trial;
                if (ref.weight != kInfiniteWeightSum)
                    ASSERT_EQ(wide.row, ref.row)
                        << "m " << m << " trial " << trial;
            }
        }
    }
}

TEST(KernelMatchTile32, Avx512ReadsOnlyUpperTriangle)
{
    // The HW6 unit model only initializes i < j tile entries; the
    // AVX-512 variant must mask its gathers so everything else —
    // diagonal, lower triangle, tile[0] — is never read. Poison those
    // entries with zeros (which would win any min-reduction) and check
    // the result still matches the scalar evaluation.
    if (!cpuHasAvx512())
        GTEST_SKIP() << "host lacks AVX-512";
    for (int m : {2, 4, 6}) {
        const MatchingTable &table = MatchingTable::forNodes(m);
        Rng rng(0xcafe0000u + static_cast<uint64_t>(m));
        std::vector<WeightSum> tile;
        for (int trial = 0; trial < 100; trial++) {
            tile.assign(static_cast<size_t>(m) * m, 0);
            for (int i = 0; i < m; i++)
                for (int j = i + 1; j < m; j++)
                    tile[static_cast<size_t>(i) * m + j] =
                        1 + static_cast<WeightSum>(
                                rng.uniformInt(1u << 20));

            const KernelMatch scalar =
                matchTile32(table, tile.data(), KernelKind::kScalar);
            const KernelMatch wide =
                matchTile32(table, tile.data(), KernelKind::kAvx512);
            ASSERT_EQ(wide.weight, scalar.weight)
                << "m " << m << " trial " << trial;
            ASSERT_EQ(wide.row, scalar.row)
                << "m " << m << " trial " << trial;
        }
    }
}

TEST(KernelMatchTile32, PropagatesInfiniteWeightSum)
{
    const int m = 2;
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<WeightSum> tile(static_cast<size_t>(m) * m,
                                kInfiniteWeightSum);
    EXPECT_EQ(matchTile32(table, tile.data()).weight,
              kInfiniteWeightSum);
}

TEST(LwtTileDomain, ToWeightSumMapsTheCeilingToInfinity)
{
    EXPECT_EQ(LwtTile::toWeightSum(0), 0u);
    EXPECT_EQ(LwtTile::toWeightSum(510), 510u);
    EXPECT_EQ(LwtTile::toWeightSum(kInfiniteTileWeight),
              kInfiniteWeightSum);
}

/** The tier the cpuid-driven default should pick on this host. */
KernelKind
widestSupportedKind()
{
    if (cpuHasAvx512())
        return KernelKind::kAvx512;
    if (cpuHasAvx2())
        return KernelKind::kAvx2;
    return KernelKind::kScalar;
}

TEST(KernelDispatch, ForcedScalarOverridesCpuid)
{
    {
        ScopedEnv clear("ASTREA_FORCE_KERNEL", nullptr);
        ScopedEnv force("ASTREA_FORCE_SCALAR", "1");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kScalar);
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, DefaultFollowsCpuid)
{
    {
        ScopedEnv clear_kernel("ASTREA_FORCE_KERNEL", nullptr);
        ScopedEnv clear_scalar("ASTREA_FORCE_SCALAR", nullptr);
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), widestSupportedKind());
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, ForceKernelPinsEachSupportedTier)
{
    ScopedEnv clear_scalar("ASTREA_FORCE_SCALAR", nullptr);
    {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "scalar");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kScalar);
    }
    if (cpuHasAvx2()) {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "avx2");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kAvx2);
    }
    if (cpuHasAvx512()) {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "avx512");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kAvx512);
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, ForceKernelBeatsLegacyForceScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "host lacks AVX2";
    {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "avx2");
        ScopedEnv legacy("ASTREA_FORCE_SCALAR", "1");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kAvx2);
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, UnsupportedTierFallsBackToBestSupported)
{
    // Cap the reported cpuid at AVX2 so forcing AVX-512 is
    // unsupported regardless of the actual host.
    ScopedEnv clear_scalar("ASTREA_FORCE_SCALAR", nullptr);
    {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "avx512");
        setCpuKernelCapForTest(KernelKind::kAvx2);
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), cpuHasAvx2()
                                          ? KernelKind::kAvx2
                                          : KernelKind::kScalar);

        setCpuKernelCapForTest(KernelKind::kScalar);
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kScalar);
    }
    setCpuKernelCapForTest(KernelKind::kAvx512);
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, UnknownTierNameFallsBackToAutomatic)
{
    ScopedEnv clear_scalar("ASTREA_FORCE_SCALAR", nullptr);
    {
        ScopedEnv force("ASTREA_FORCE_KERNEL", "sse9");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), widestSupportedKind());
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, KindNames)
{
    EXPECT_STREQ(kernelKindName(KernelKind::kScalar), "scalar");
    EXPECT_STREQ(kernelKindName(KernelKind::kAvx2), "avx2");
    EXPECT_STREQ(kernelKindName(KernelKind::kAvx512), "avx512");
}

} // namespace
} // namespace astrea
