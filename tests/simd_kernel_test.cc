/**
 * @file
 * Kernel parity suite: the AVX2 and scalar candidate-evaluation
 * kernels must agree bit-for-bit with each other and with the legacy
 * enumerator-driven evaluation — minimum weight, winning row (hence
 * winning pair set) and reconstructed observable mask — over seeded
 * random weight tiles including infinite entries and values deep in
 * the 16-bit saturation range. Runs under the sanitizer CI jobs like
 * every other test.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "astrea/lwt_tile.hh"
#include "astrea/matching_tables.hh"
#include "astrea/simd_kernel.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "matching/enumerator.hh"

namespace astrea
{
namespace
{

/** Scoped setenv that restores the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        if (prev != nullptr) {
            had_ = true;
            prev_ = prev;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string prev_;
};

/**
 * Legacy-style reference: walk the canonical enumerator and evaluate
 * each matching over the tile with saturating 16-bit-domain sums,
 * keeping the first minimum.
 */
KernelMatch
referenceMatch16(int m, const int32_t *tile)
{
    KernelMatch best;
    uint32_t row = 0;
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        uint32_t sum = 0;
        for (auto [i, j] : pl)
            sum += static_cast<uint32_t>(tile[i * m + j]);
        if (sum > kInfiniteTileWeight)
            sum = kInfiniteTileWeight;
        if (sum < best.weight) {
            best.weight = sum;
            best.row = row;
        }
        row++;
    });
    return best;
}

/** The winning pair set of a table row, for set-level comparison. */
std::vector<std::pair<int, int>>
rowPairs(const MatchingTable &table, uint32_t row)
{
    std::vector<std::pair<int, int>> pairs;
    for (int k = 0; k < table.pairsPerRow(); k++)
        pairs.push_back(table.pairAt(row, k));
    return pairs;
}

/** XOR of per-pair observable masks along a table row. */
uint64_t
rowObs(const MatchingTable &table, uint32_t row,
       const std::vector<uint64_t> &obs, int m)
{
    uint64_t mask = 0;
    for (int k = 0; k < table.pairsPerRow(); k++) {
        auto [i, j] = table.pairAt(row, k);
        mask ^= obs[static_cast<size_t>(i) * m + j];
    }
    return mask;
}

/**
 * Fill a tile with seeded random weights: mostly realistic quantized
 * effective weights (0..510), a slice of large values near the 16-bit
 * ceiling to exercise saturation, and a slice of infinite entries.
 */
void
randomTile(Rng &rng, int m, std::vector<int32_t> &tile,
           std::vector<uint64_t> &obs)
{
    tile.assign(static_cast<size_t>(m) * m,
                static_cast<int32_t>(kInfiniteTileWeight));
    obs.assign(static_cast<size_t>(m) * m, 0);
    for (int i = 0; i < m; i++) {
        for (int j = i + 1; j < m; j++) {
            const double cls = rng.uniform();
            int32_t w;
            if (cls < 0.70)
                w = static_cast<int32_t>(rng.uniformInt(511));
            else if (cls < 0.85)
                w = static_cast<int32_t>(rng.uniformInt(0xFFFF));
            else
                w = static_cast<int32_t>(kInfiniteTileWeight);
            const uint64_t o = rng();
            tile[static_cast<size_t>(i) * m + j] = w;
            tile[static_cast<size_t>(j) * m + i] = w;
            obs[static_cast<size_t>(i) * m + j] = o;
            obs[static_cast<size_t>(j) * m + i] = o;
        }
    }
}

class KernelParityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelParityTest, KernelsMatchLegacyEnumerator)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    Rng rng(0xa57ea000u + static_cast<uint64_t>(m));

    std::vector<int32_t> tile;
    std::vector<uint64_t> obs;
    const bool have_avx2 = cpuHasAvx2();
    for (int trial = 0; trial < 1000; trial++) {
        randomTile(rng, m, tile, obs);

        const KernelMatch ref = referenceMatch16(m, tile.data());
        const KernelMatch scalar =
            matchTile16(table, tile.data(), KernelKind::kScalar);

        ASSERT_EQ(scalar.weight, ref.weight) << "trial " << trial;
        if (ref.weight < kInfiniteTileWeight) {
            ASSERT_EQ(scalar.row, ref.row) << "trial " << trial;
            EXPECT_EQ(rowPairs(table, scalar.row),
                      rowPairs(table, ref.row));
            EXPECT_EQ(rowObs(table, scalar.row, obs, m),
                      rowObs(table, ref.row, obs, m));
        }

        if (have_avx2) {
            const KernelMatch simd =
                matchTile16(table, tile.data(), KernelKind::kAvx2);
            ASSERT_EQ(simd.weight, ref.weight) << "trial " << trial;
            if (ref.weight < kInfiniteTileWeight) {
                ASSERT_EQ(simd.row, ref.row) << "trial " << trial;
                EXPECT_EQ(rowObs(table, simd.row, obs, m),
                          rowObs(table, ref.row, obs, m));
            }
        }
    }
}

TEST_P(KernelParityTest, AllInfiniteTileReportsInfinity)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(
        static_cast<size_t>(m) * m,
        static_cast<int32_t>(kInfiniteTileWeight));

    EXPECT_EQ(matchTile16(table, tile.data(), KernelKind::kScalar)
                  .weight,
              kInfiniteTileWeight);
    if (cpuHasAvx2()) {
        EXPECT_EQ(matchTile16(table, tile.data(), KernelKind::kAvx2)
                      .weight,
                  kInfiniteTileWeight);
    }
}

TEST_P(KernelParityTest, EqualWeightsBreakTiesToFirstRow)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(static_cast<size_t>(m) * m, 3);
    tile[0] = static_cast<int32_t>(kInfiniteTileWeight);
    for (int i = 0; i < m; i++)
        tile[static_cast<size_t>(i) * m + i] =
            static_cast<int32_t>(kInfiniteTileWeight);

    const KernelMatch scalar =
        matchTile16(table, tile.data(), KernelKind::kScalar);
    EXPECT_EQ(scalar.row, 0u);
    EXPECT_EQ(scalar.weight, 3u * (m / 2));
    if (cpuHasAvx2()) {
        const KernelMatch simd =
            matchTile16(table, tile.data(), KernelKind::kAvx2);
        EXPECT_EQ(simd.row, 0u);
        EXPECT_EQ(simd.weight, 3u * (m / 2));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelParityTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(KernelSaturation, SumsClampToTheInfiniteCeiling)
{
    // Two large finite weights whose sum exceeds 16 bits must behave
    // as "no edge": the kernel may not wrap around and report a small
    // winning weight.
    const int m = 4;
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<int32_t> tile(
        static_cast<size_t>(m) * m,
        static_cast<int32_t>(kInfiniteTileWeight));
    // Matching {(0,1), (2,3)} saturates; {(0,2), (1,3)} stays finite.
    tile[0 * m + 1] = 0x9000;
    tile[2 * m + 3] = 0x9000;
    tile[0 * m + 2] = 0x7000;
    tile[1 * m + 3] = 0x7000;

    const KernelMatch ref = referenceMatch16(m, tile.data());
    const KernelMatch scalar =
        matchTile16(table, tile.data(), KernelKind::kScalar);
    EXPECT_EQ(scalar.weight, 0xE000u);
    EXPECT_EQ(scalar.weight, ref.weight);
    EXPECT_EQ(scalar.row, ref.row);
    EXPECT_EQ(rowPairs(table, scalar.row),
              (std::vector<std::pair<int, int>>{{0, 2}, {1, 3}}));
    if (cpuHasAvx2()) {
        const KernelMatch simd =
            matchTile16(table, tile.data(), KernelKind::kAvx2);
        EXPECT_EQ(simd.weight, ref.weight);
        EXPECT_EQ(simd.row, ref.row);
    }
}

TEST(KernelMatchTile32, AgreesWithAddWeightsSemantics)
{
    // Full-width evaluation: kInfiniteWeightSum entries poison any
    // candidate touching them, and sums well beyond 16 bits survive.
    for (int m : {2, 4, 6, 8, 10}) {
        const MatchingTable &table = MatchingTable::forNodes(m);
        Rng rng(0xbeef0000u + static_cast<uint64_t>(m));
        std::vector<WeightSum> tile;
        for (int trial = 0; trial < 200; trial++) {
            tile.assign(static_cast<size_t>(m) * m,
                        kInfiniteWeightSum);
            for (int i = 0; i < m; i++)
                for (int j = i + 1; j < m; j++)
                    tile[static_cast<size_t>(i) * m + j] =
                        rng.uniform() < 0.15
                            ? kInfiniteWeightSum
                            : static_cast<WeightSum>(
                                  rng.uniformInt(1u << 20));

            KernelMatch ref;
            ref.weight = kInfiniteWeightSum;
            uint32_t row = 0;
            forEachPerfectMatchingT(m, [&](const PairList &pl) {
                WeightSum sum = 0;
                for (auto [i, j] : pl)
                    sum = addWeights(
                        sum, tile[static_cast<size_t>(i) * m + j]);
                if (sum < ref.weight) {
                    ref.weight = sum;
                    ref.row = row;
                }
                row++;
            });

            const KernelMatch got = matchTile32(table, tile.data());
            ASSERT_EQ(got.weight, ref.weight)
                << "m " << m << " trial " << trial;
            if (ref.weight != kInfiniteWeightSum)
                ASSERT_EQ(got.row, ref.row)
                    << "m " << m << " trial " << trial;
        }
    }
}

TEST(KernelMatchTile32, PropagatesInfiniteWeightSum)
{
    const int m = 2;
    const MatchingTable &table = MatchingTable::forNodes(m);
    std::vector<WeightSum> tile(static_cast<size_t>(m) * m,
                                kInfiniteWeightSum);
    EXPECT_EQ(matchTile32(table, tile.data()).weight,
              kInfiniteWeightSum);
}

TEST(LwtTileDomain, ToWeightSumMapsTheCeilingToInfinity)
{
    EXPECT_EQ(LwtTile::toWeightSum(0), 0u);
    EXPECT_EQ(LwtTile::toWeightSum(510), 510u);
    EXPECT_EQ(LwtTile::toWeightSum(kInfiniteTileWeight),
              kInfiniteWeightSum);
}

TEST(KernelDispatch, ForcedScalarOverridesCpuid)
{
    {
        ScopedEnv force("ASTREA_FORCE_SCALAR", "1");
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), KernelKind::kScalar);
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, DefaultFollowsCpuid)
{
    {
        ScopedEnv clear("ASTREA_FORCE_SCALAR", nullptr);
        resetKernelDispatchForTest();
        EXPECT_EQ(activeKernelKind(), cpuHasAvx2()
                                          ? KernelKind::kAvx2
                                          : KernelKind::kScalar);
    }
    resetKernelDispatchForTest();
}

TEST(KernelDispatch, KindNames)
{
    EXPECT_STREQ(kernelKindName(KernelKind::kScalar), "scalar");
    EXPECT_STREQ(kernelKindName(KernelKind::kAvx2), "avx2");
}

} // namespace
} // namespace astrea
