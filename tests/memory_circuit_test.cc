/**
 * @file
 * Tests for the memory-experiment circuit generator: syndrome-vector
 * lengths (paper Table 1), determinism of detectors without noise, and
 * the structure of the noise instrumentation.
 */

#include <gtest/gtest.h>

#include "sim/frame_sim.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{
namespace
{

TEST(SyndromeVectorLength, MatchesTable1)
{
    // Table 1: lengths 16 / 72 / 192 / 400 for d = 3 / 5 / 7 / 9.
    EXPECT_EQ(syndromeVectorLength(3, 3), 16u);
    EXPECT_EQ(syndromeVectorLength(5, 5), 72u);
    EXPECT_EQ(syndromeVectorLength(7, 7), 192u);
    EXPECT_EQ(syndromeVectorLength(9, 9), 400u);
}

TEST(SyndromeVectorLength, DefaultRoundsIsDistance)
{
    EXPECT_EQ(syndromeVectorLength(5, 0), syndromeVectorLength(5, 5));
}

class MemoryCircuitTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, Basis>>
{
  protected:
    Circuit
    makeCircuit(const NoiseModel &noise, uint32_t rounds = 0) const
    {
        auto [d, basis] = GetParam();
        SurfaceCodeLayout layout(d);
        MemoryExperimentSpec spec;
        spec.distance = d;
        spec.rounds = rounds;
        spec.basis = basis;
        spec.noise = noise;
        return buildMemoryCircuit(layout, spec);
    }
};

TEST_P(MemoryCircuitTest, DetectorCount)
{
    auto [d, basis] = GetParam();
    Circuit c = makeCircuit(NoiseModel::noiseless());
    EXPECT_EQ(c.numDetectors(), syndromeVectorLength(d, d));
    EXPECT_EQ(c.numObservables(), 1u);
}

TEST_P(MemoryCircuitTest, MeasurementCount)
{
    auto [d, basis] = GetParam();
    Circuit c = makeCircuit(NoiseModel::noiseless());
    // d rounds of (d^2 - 1) ancilla measurements plus d^2 final data
    // measurements.
    EXPECT_EQ(c.numMeasurements(), d * (d * d - 1) + d * d);
}

TEST_P(MemoryCircuitTest, NoiselessShotsAreAllZero)
{
    Circuit c = makeCircuit(NoiseModel::noiseless());
    FrameSimulator sim(c);
    Rng rng(5);
    BitVec dets, obs;
    for (int s = 0; s < 10; s++) {
        sim.sample(rng, dets, obs);
        EXPECT_TRUE(dets.none());
        EXPECT_TRUE(obs.none());
    }
}

TEST_P(MemoryCircuitTest, NoisyShotsTriggerDetectors)
{
    Circuit c = makeCircuit(NoiseModel::uniform(0.05));
    FrameSimulator sim(c);
    Rng rng(5);
    BitVec dets, obs;
    size_t nonzero = 0;
    for (int s = 0; s < 50; s++) {
        sim.sample(rng, dets, obs);
        if (!dets.none())
            nonzero++;
    }
    EXPECT_GT(nonzero, 40u);
}

TEST_P(MemoryCircuitTest, DetectorMetadataCoversAllRounds)
{
    auto [d, basis] = GetParam();
    Circuit c = makeCircuit(NoiseModel::noiseless());
    const auto &info = c.detectorInfo();
    ASSERT_EQ(info.size(), c.numDetectors());
    uint32_t max_round = 0;
    for (const auto &di : info) {
        EXPECT_EQ(di.basis, basis);
        max_round = std::max(max_round, di.round);
    }
    // Rounds 0..d-1 plus the final data-comparison round d.
    EXPECT_EQ(max_round, d);
    // Each round contributes (d^2 - 1) / 2 detectors.
    std::vector<uint32_t> per_round(d + 1, 0);
    for (const auto &di : info)
        per_round[di.round]++;
    for (auto count : per_round)
        EXPECT_EQ(count, (d * d - 1) / 2);
}

TEST_P(MemoryCircuitTest, RoundsOverride)
{
    auto [d, basis] = GetParam();
    Circuit c = makeCircuit(NoiseModel::noiseless(), 2);
    EXPECT_EQ(c.numDetectors(), syndromeVectorLength(d, 2));
}

TEST_P(MemoryCircuitTest, NoiseInstrumentationPresent)
{
    auto [d, basis] = GetParam();
    Circuit c = makeCircuit(NoiseModel::uniform(1e-3));
    uint32_t depol1 = 0, depol2 = 0, xerr = 0;
    for (const auto &op : c.instructions()) {
        switch (op.type) {
          case GateType::Depolarize1:
            depol1++;
            break;
          case GateType::Depolarize2:
            depol2++;
            break;
          case GateType::XError:
            xerr++;
            break;
          default:
            break;
        }
    }
    // One data depolarization per round, four CX-layer depolarizations
    // per round; reset + measurement flips per round plus the final
    // data-measurement flip.
    EXPECT_EQ(depol1, d);
    EXPECT_EQ(depol2, 4 * d);
    EXPECT_EQ(xerr, 2 * d + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MemoryCircuitTest,
    ::testing::Combine(::testing::Values(3u, 5u, 7u),
                       ::testing::Values(Basis::Z, Basis::X)));

} // namespace
} // namespace astrea
