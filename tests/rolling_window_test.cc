/**
 * @file
 * Tests for the rolling sub-window aggregation (rolling_window.hh):
 * totals over partial windows, slot recycling as the tick advances,
 * full decay once a whole ring has passed, and latency percentiles
 * matching the shared log2 bucket math — plus boundary-time hammer
 * tests pinning the recycle protocol: a snapshot taken exactly when a
 * slot is being recycled must never attribute the previous
 * sub-window's counts to the new tick (double counting).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/rolling_window.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

TEST(RollingCounterTest, AccumulatesWithinOneTick)
{
    RollingCounter c(4);
    c.add(0, 3);
    c.add(0, 2);
    EXPECT_EQ(c.total(0), 5u);
    EXPECT_EQ(c.total(0, 1), 5u);
}

TEST(RollingCounterTest, WindowSelectsRecentSubWindows)
{
    RollingCounter c(4);
    c.add(0, 1);
    c.add(1, 10);
    c.add(2, 100);
    EXPECT_EQ(c.total(2), 111u);      // Whole ring.
    EXPECT_EQ(c.total(2, 1), 100u);   // Current sub-window only.
    EXPECT_EQ(c.total(2, 2), 110u);   // Last two.
    EXPECT_EQ(c.total(3, 2), 100u);   // Tick 3 is empty; 2 is in.
}

TEST(RollingCounterTest, DecaysAfterLoadStops)
{
    RollingCounter c(4);
    c.add(5, 9);
    EXPECT_EQ(c.total(5), 9u);
    // Reading at a much later tick: the old slot is outside the
    // window even though no writer has recycled it yet.
    EXPECT_EQ(c.total(5 + 4, 0), 0u);
    EXPECT_EQ(c.total(1000), 0u);
}

TEST(RollingCounterTest, SlotRecyclingZeroesOldCounts)
{
    RollingCounter c(2);
    c.add(0, 7);
    // Tick 2 maps to the same slot as tick 0; the write must reset it.
    c.add(2, 1);
    EXPECT_EQ(c.total(2), 1u);
}

TEST(RollingLatencyTest, CountAndPercentiles)
{
    RollingLatency l(4);
    for (int i = 0; i < 100; i++)
        l.record(0, 100.0);
    l.record(0, 6400.0);
    EXPECT_EQ(l.count(0), 101u);
    // p50 lives in the log2 bucket containing 100 ns.
    double p50 = l.percentileNs(0, 50.0);
    EXPECT_GE(p50, latencyBucketLowNs(latencyBucketIndex(100)));
    EXPECT_LE(p50, latencyBucketHighNs(latencyBucketIndex(100)));
    // The max sample caps the distribution.
    EXPECT_LE(l.percentileNs(0, 100.0), 6400.0 + 1e-9);
}

TEST(RollingLatencyTest, DecaysAfterLoadStops)
{
    RollingLatency l(3);
    l.record(0, 500.0);
    EXPECT_EQ(l.count(0), 1u);
    EXPECT_EQ(l.count(3), 0u);
    EXPECT_DOUBLE_EQ(l.percentileNs(3, 99.0), 0.0);
}

TEST(RollingLatencyTest, BucketsMatchLatencyMetricGeometry)
{
    RollingLatency l(4);
    LatencyMetric m;
    for (double ns : {1.0, 3.0, 900.0, 40000.0}) {
        l.record(1, ns);
        m.record(ns);
    }
    LatencyBuckets lw = l.buckets(1);
    LatencyBuckets lm = m.buckets();
    EXPECT_EQ(lw.count, lm.count);
    EXPECT_EQ(lw.bins, lm.bins);
    EXPECT_EQ(lw.minNs, lm.minNs);
    EXPECT_EQ(lw.maxNs, lm.maxNs);
}

TEST(RollingCounterTest, BoundarySnapshotNeverSeesStaleCountOnNewTick)
{
    // Deterministic version of the boundary race: fill a slot at tick
    // 0, then query the single-sub-window total at the recycling tick
    // before and after the first write of the new sub-window. Neither
    // side of the boundary may ever report the old slot's count under
    // the new tick.
    RollingCounter c(2);
    c.add(0, 1000);
    // Tick 2 maps onto tick 0's slot. Before any tick-2 write, the
    // stale slot is simply outside the window.
    EXPECT_EQ(c.total(2, 1), 0u);
    c.add(2, 1);
    EXPECT_EQ(c.total(2, 1), 1u);
}

TEST(RollingCounterTest, RecycleHammerNeverDoubleCounts)
{
    // One writer adds exactly kPerTick events per tick, advancing
    // through many slot recycles; a concurrent reader snapshots the
    // current sub-window. The single-sub-window total can never
    // exceed kPerTick — seeing the new tick paired with the previous
    // sub-window's count (the old double-count bug) would read as up
    // to 2 * kPerTick.
    constexpr uint64_t kPerTick = 64;
    constexpr uint64_t kTicks = 4000;
    RollingCounter c(4);

    std::atomic<uint64_t> writer_tick{0};
    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const uint64_t t =
                writer_tick.load(std::memory_order_acquire);
            const uint64_t seen = c.total(t, 1);
            // The reader's tick may lag the writer's by one; a lagging
            // snapshot sees at most one full sub-window either way.
            if (seen > kPerTick)
                failed.store(true, std::memory_order_relaxed);
        }
    });

    for (uint64_t t = 0; t < kTicks; t++) {
        writer_tick.store(t, std::memory_order_release);
        for (uint64_t i = 0; i < kPerTick; i++)
            c.add(t, 1);
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_FALSE(failed.load()) << "single-sub-window total exceeded "
                                   "one tick's events: the recycling "
                                   "slot was double-counted";
}

TEST(RollingLatencyTest, RecycleHammerNeverDoubleCounts)
{
    constexpr uint64_t kPerTick = 32;
    constexpr uint64_t kTicks = 2000;
    RollingLatency l(4);

    std::atomic<uint64_t> writer_tick{0};
    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const uint64_t t =
                writer_tick.load(std::memory_order_acquire);
            // (bins vs count consistency is NOT asserted: the two are
            // incremented by separate relaxed atomics, so a snapshot
            // between them legitimately disagrees by a few samples.)
            if (l.count(t, 1) > kPerTick ||
                l.buckets(t, 1).count > kPerTick)
                failed.store(true, std::memory_order_relaxed);
        }
    });

    for (uint64_t t = 0; t < kTicks; t++) {
        writer_tick.store(t, std::memory_order_release);
        for (uint64_t i = 0; i < kPerTick; i++)
            l.record(t, 100.0);
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_FALSE(failed.load()) << "single-sub-window snapshot "
                                   "double-counted a recycling slot";
}

TEST(RollingLatencyTest, BoundarySnapshotSeesFreshSlotAfterRecycle)
{
    RollingLatency l(2);
    for (int i = 0; i < 10; i++)
        l.record(0, 50000.0);
    // Tick 2 recycles tick 0's slot: the single-sub-window view must
    // contain only the new sample, and the percentile must reflect
    // the new distribution, not the stale 50 us burst.
    l.record(2, 100.0);
    EXPECT_EQ(l.count(2, 1), 1u);
    LatencyBuckets b = l.buckets(2, 1);
    EXPECT_EQ(b.count, 1u);
    EXPECT_LE(b.maxNs, 128u);
}

TEST(RollingLatencyTest, WindowedPercentileIgnoresOldSlots)
{
    RollingLatency l(8);
    for (int i = 0; i < 50; i++)
        l.record(0, 10000.0);  // Slow burst, long ago.
    for (int i = 0; i < 50; i++)
        l.record(5, 10.0);  // Recent fast traffic.
    // Whole ring sees both; the short window sees only the recent.
    EXPECT_EQ(l.count(5, 0), 100u);
    EXPECT_EQ(l.count(5, 2), 50u);
    EXPECT_LE(l.percentileNs(5, 99.0, 2), 16.0);
    EXPECT_GE(l.percentileNs(5, 99.0, 0), 1000.0);
}

} // namespace
