/**
 * @file
 * Tests for the rolling sub-window aggregation (rolling_window.hh):
 * totals over partial windows, slot recycling as the tick advances,
 * full decay once a whole ring has passed, and latency percentiles
 * matching the shared log2 bucket math.
 */

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/rolling_window.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

TEST(RollingCounterTest, AccumulatesWithinOneTick)
{
    RollingCounter c(4);
    c.add(0, 3);
    c.add(0, 2);
    EXPECT_EQ(c.total(0), 5u);
    EXPECT_EQ(c.total(0, 1), 5u);
}

TEST(RollingCounterTest, WindowSelectsRecentSubWindows)
{
    RollingCounter c(4);
    c.add(0, 1);
    c.add(1, 10);
    c.add(2, 100);
    EXPECT_EQ(c.total(2), 111u);      // Whole ring.
    EXPECT_EQ(c.total(2, 1), 100u);   // Current sub-window only.
    EXPECT_EQ(c.total(2, 2), 110u);   // Last two.
    EXPECT_EQ(c.total(3, 2), 100u);   // Tick 3 is empty; 2 is in.
}

TEST(RollingCounterTest, DecaysAfterLoadStops)
{
    RollingCounter c(4);
    c.add(5, 9);
    EXPECT_EQ(c.total(5), 9u);
    // Reading at a much later tick: the old slot is outside the
    // window even though no writer has recycled it yet.
    EXPECT_EQ(c.total(5 + 4, 0), 0u);
    EXPECT_EQ(c.total(1000), 0u);
}

TEST(RollingCounterTest, SlotRecyclingZeroesOldCounts)
{
    RollingCounter c(2);
    c.add(0, 7);
    // Tick 2 maps to the same slot as tick 0; the write must reset it.
    c.add(2, 1);
    EXPECT_EQ(c.total(2), 1u);
}

TEST(RollingLatencyTest, CountAndPercentiles)
{
    RollingLatency l(4);
    for (int i = 0; i < 100; i++)
        l.record(0, 100.0);
    l.record(0, 6400.0);
    EXPECT_EQ(l.count(0), 101u);
    // p50 lives in the log2 bucket containing 100 ns.
    double p50 = l.percentileNs(0, 50.0);
    EXPECT_GE(p50, latencyBucketLowNs(latencyBucketIndex(100)));
    EXPECT_LE(p50, latencyBucketHighNs(latencyBucketIndex(100)));
    // The max sample caps the distribution.
    EXPECT_LE(l.percentileNs(0, 100.0), 6400.0 + 1e-9);
}

TEST(RollingLatencyTest, DecaysAfterLoadStops)
{
    RollingLatency l(3);
    l.record(0, 500.0);
    EXPECT_EQ(l.count(0), 1u);
    EXPECT_EQ(l.count(3), 0u);
    EXPECT_DOUBLE_EQ(l.percentileNs(3, 99.0), 0.0);
}

TEST(RollingLatencyTest, BucketsMatchLatencyMetricGeometry)
{
    RollingLatency l(4);
    LatencyMetric m;
    for (double ns : {1.0, 3.0, 900.0, 40000.0}) {
        l.record(1, ns);
        m.record(ns);
    }
    LatencyBuckets lw = l.buckets(1);
    LatencyBuckets lm = m.buckets();
    EXPECT_EQ(lw.count, lm.count);
    EXPECT_EQ(lw.bins, lm.bins);
    EXPECT_EQ(lw.minNs, lm.minNs);
    EXPECT_EQ(lw.maxNs, lm.maxNs);
}

TEST(RollingLatencyTest, WindowedPercentileIgnoresOldSlots)
{
    RollingLatency l(8);
    for (int i = 0; i < 50; i++)
        l.record(0, 10000.0);  // Slow burst, long ago.
    for (int i = 0; i < 50; i++)
        l.record(5, 10.0);  // Recent fast traffic.
    // Whole ring sees both; the short window sees only the recent.
    EXPECT_EQ(l.count(5, 0), 100u);
    EXPECT_EQ(l.count(5, 2), 50u);
    EXPECT_LE(l.percentileNs(5, 99.0, 2), 16.0);
    EXPECT_GE(l.percentileNs(5, 99.0, 0), 1000.0);
}

} // namespace
