/**
 * @file
 * Tests for the live decode service (harness/decode_service.hh).
 *
 * DecodeServiceCore is driven synchronously with an injected tick, so
 * the Prometheus exposition, the /statusz JSON schema, rolling-window
 * decay and the syndrome-drift monitor are all checked
 * deterministically; one test then runs the full DecodeService over a
 * real loopback socket.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/decode_service.hh"
#include "net/http_client.hh"
#include "telemetry/json_value.hh"
#include "telemetry/trace_store.hh"

using namespace astrea;

namespace
{

/** Small, fast configuration for synchronous single-thread tests. */
ServeConfig
testConfig()
{
    ServeConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-3;
    cfg.decoder = "astrea";
    cfg.workers = 1;
    cfg.seed = 7;
    cfg.subWindows = 4;
    cfg.fastBurnSubWindows = 2;
    cfg.warmupShots = 400;
    cfg.driftBucketShots = 200;
    cfg.driftRingSlots = 4;
    cfg.driftThreshold = 0.05;
    return cfg;
}

/** Value of the first unlabelled sample of `name`, or -1. */
double
sampleValue(const std::string &text, const std::string &name)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(name + " ", 0) == 0)
            return std::stod(line.substr(name.size() + 1));
    }
    return -1.0;
}

TEST(DecodeServiceCoreTest, PrometheusExposition)
{
    DecodeServiceCore core(testConfig());
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    auto w = core.makeWorker(0);
    for (int i = 0; i < 1000; i++)
        core.decodeOnce(*w);

    std::string text = core.metricsText();

    // TYPE headers for the headline families.
    for (const char *family :
         {"# TYPE astrea_serve_up gauge",
          "# TYPE astrea_serve_decodes_total counter",
          "# TYPE astrea_serve_deadline_misses_total counter",
          "# TYPE astrea_serve_window_latency_ns histogram",
          "# TYPE astrea_serve_slo_fast_burn gauge",
          "# TYPE astrea_serve_slo_slow_burn gauge",
          "# TYPE astrea_serve_drift_chi_square gauge"}) {
        EXPECT_NE(text.find(family), std::string::npos) << family;
    }

    EXPECT_DOUBLE_EQ(sampleValue(text, "astrea_serve_up"), 1.0);
    EXPECT_DOUBLE_EQ(sampleValue(text, "astrea_serve_decodes_total"),
                     1000.0);
    EXPECT_NE(text.find("astrea_serve_info{decoder=\"astrea\""),
              std::string::npos);

    // Latency histogram: cumulative buckets, +Inf equals _count.
    uint64_t prev = 0, inf = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("astrea_serve_window_latency_ns_bucket", 0) !=
            0)
            continue;
        uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, prev) << line;
        prev = v;
        if (line.find("le=\"+Inf\"") != std::string::npos)
            inf = v;
    }
    double count =
        sampleValue(text, "astrea_serve_window_latency_ns_count");
    EXPECT_EQ(inf, static_cast<uint64_t>(count));
    EXPECT_EQ(inf, 1000u);

    // Percentile gauges exist with sanitized names.
    EXPECT_GE(sampleValue(text, "astrea_serve_window_latency_p50_ns"),
              0.0);
    EXPECT_GE(
        sampleValue(text, "astrea_serve_window_latency_p99_9_ns"),
        0.0);
}

TEST(DecodeServiceCoreTest, StatuszSchemaParses)
{
    DecodeServiceCore core(testConfig());
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    auto w = core.makeWorker(0);
    for (int i = 0; i < 500; i++)
        core.decodeOnce(*w);

    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(core.statuszJson(), doc));
    EXPECT_EQ(doc["service"].asString(), "astrea_serve");
    EXPECT_EQ(doc["schema_version"].asUint(), 5u);
    EXPECT_TRUE(doc["healthy"].asBool());
    EXPECT_EQ(doc["config"]["d"].asUint(), 3u);
    EXPECT_EQ(doc["config"]["decoder"].asString(), "astrea");
    EXPECT_EQ(doc["totals"]["decodes"].asUint(), 500u);
    EXPECT_EQ(doc["window"]["decodes"].asUint(), 500u);
    EXPECT_EQ(doc["window"]["latency_ns"]["count"].asUint(), 500u);
    EXPECT_GE(doc["slo"]["error_budget"].asNumber(), 0.0);
    ASSERT_TRUE(doc.has("drift"));
    EXPECT_GE(doc["drift"]["chi_square"].asNumber(), 0.0);
    // Schema v2: the audit object is always present; the default
    // config has auditing off.
    ASSERT_TRUE(doc.has("audit"));
    EXPECT_FALSE(doc["audit"]["enabled"].asBool(true));
    EXPECT_EQ(doc["audit"]["completed"].asUint(1), 0u);
    // Schema v3: the perf object is always present; whether counters
    // actually opened depends on the host, so only the shape is
    // pinned here (perf_counters_test.cc covers the states).
    ASSERT_TRUE(doc.has("perf"));
    ASSERT_TRUE(doc["perf"].has("available"));
    ASSERT_TRUE(doc["perf"].has("stage_stride"));
    ASSERT_TRUE(doc["perf"].has("stages"));
    // Schema v4: the trace_store object is always present.
    ASSERT_TRUE(doc.has("trace_store"));
    EXPECT_TRUE(doc["trace_store"]["enabled"].asBool(false));
    EXPECT_EQ(doc["trace_store"]["capacity"].asUint(0),
              testConfig().traceRing);
    EXPECT_LE(doc["trace_store"]["occupancy"].asUint(9999),
              doc["trace_store"]["capacity"].asUint(0));
    EXPECT_TRUE(doc["trace_store"].has("considered"));
    EXPECT_TRUE(doc["trace_store"].has("tail_effective_ns"));
    EXPECT_TRUE(doc["trace_store"].has("head_stride"));
}

TEST(DecodeServiceCoreTest, RollingWindowDecaysAfterLoadStops)
{
    DecodeServiceCore core(testConfig());
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    auto w = core.makeWorker(0);
    for (int i = 0; i < 300; i++)
        core.decodeOnce(*w);

    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(core.statuszJson(), doc));
    EXPECT_EQ(doc["window"]["decodes"].asUint(), 300u);
    EXPECT_EQ(doc["totals"]["decodes"].asUint(), 300u);

    // Advance past the whole ring without decoding: the window
    // empties, the since-start totals do not.
    tick += testConfig().subWindows + 1;
    ASSERT_TRUE(telemetry::parseJson(core.statuszJson(), doc));
    EXPECT_EQ(doc["window"]["decodes"].asUint(), 0u);
    EXPECT_EQ(doc["window"]["latency_ns"]["count"].asUint(), 0u);
    EXPECT_EQ(doc["totals"]["decodes"].asUint(), 300u);
    EXPECT_DOUBLE_EQ(
        sampleValue(core.metricsText(), "astrea_serve_window_decodes"),
        0.0);
}

TEST(DecodeServiceCoreTest, DriftMonitorReactsToErrorRateChange)
{
    DecodeServiceCore core(testConfig());
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    auto w = core.makeWorker(0);
    // Warm-up plus a few clean ring buckets at the baseline p.
    for (int i = 0; i < 1200; i++)
        core.decodeOnce(*w);
    EXPECT_TRUE(core.drift().baselineReady());
    EXPECT_LT(core.drift().chiSquare(), core.drift().threshold());
    EXPECT_FALSE(core.drift().alarmed());

    // Crank the physical error rate 20x: the Hamming-weight
    // distribution shifts and the chi-square distance must follow.
    core.setErrorRate(2e-2);
    for (int i = 0; i < 2000; i++)
        core.decodeOnce(*w);
    EXPECT_GT(core.drift().chiSquare(), core.drift().threshold());
    EXPECT_TRUE(core.drift().alarmed());

    std::string text = core.metricsText();
    EXPECT_DOUBLE_EQ(sampleValue(text, "astrea_serve_drift_alarm"),
                     1.0);
    EXPECT_GT(sampleValue(text, "astrea_serve_drift_chi_square"),
              0.05);
}

TEST(DecodeServiceCoreTest, TraceEndToEndExemplarResolvesToSpans)
{
    // Force every nontrivial decode into the tail (threshold 1 ns)
    // and audit all of them, so the OpenMetrics exemplar chain is
    // deterministic: scrape -> trace_id -> /traces/<id> detail.
    ServeConfig cfg = testConfig();
    cfg.physicalErrorRate = 1e-2;
    cfg.traceTailNs = 1.0;
    cfg.traceStride = 0;
    cfg.auditRate = 1.0;
    DecodeServiceCore core(cfg);
    uint64_t tick = 0;
    core.setTickFunction([&tick] { return tick; });

    // Decode until a trace above the hw<=2 fast path was kept: those
    // bypass the modeled engine (latency 0), so only hw>=3 decodes
    // can trip the 1 ns tail threshold.
    auto &store = telemetry::TraceStore::global();
    auto w = core.makeWorker(0);
    for (int i = 0;
         i < 50000 && !(store.exemplarAbove(0).latencyNs > 0.0); i++)
        core.decodeOnce(*w);
    ASSERT_GT(store.exemplarAbove(0).latencyNs, 0.0);
    ASSERT_GE(store.counters().kept, 1u);
    EXPECT_GT(core.audit().drainNow(), 0u);

    // The OpenMetrics exposition ends with "# EOF" and attaches a
    // trace-id exemplar to the latency histogram; the 0.0.4 text
    // stays byte-compatible (no exemplars, no terminator).
    const std::string om = core.metricsText(true);
    EXPECT_NE(om.find("# EOF\n"), std::string::npos);
    ASSERT_NE(om.find("astrea_serve_window_latency_ns_bucket"),
              std::string::npos);
    // The last exemplar in the exposition sits on the highest
    // populated bucket (or +Inf): the forced-slow decode.
    const std::string marker = " # {trace_id=\"";
    const size_t pos = om.rfind(marker);
    ASSERT_NE(pos, std::string::npos);
    const std::string plain = core.metricsText(false);
    EXPECT_EQ(plain.find("trace_id=\""), std::string::npos);
    EXPECT_EQ(plain.find("# EOF"), std::string::npos);

    // The exemplar's id must resolve to a full stored trace.
    const uint64_t id = telemetry::parseTraceIdHex(
        om.substr(pos + marker.size(), 16));
    ASSERT_NE(id, 0u);
    const std::string detail = store.detailJson(id);
    ASSERT_FALSE(detail.empty());
    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(detail, doc));
    EXPECT_EQ(doc["trace_id"].asString(""), telemetry::traceIdHex(id));
    EXPECT_GT(doc["hw"].asUint(0), 0u);
    EXPECT_GT(doc["latency_ns"].asNumber(0.0), 0.0) << detail;
    bool slow = false;
    for (const auto &r : doc["reasons"].arr)
        slow |= r.asString("") == "slow";
    EXPECT_TRUE(slow) << detail;

    // Stage spans from the real decode path: the batch envelope plus
    // the astrea decoder's gather/matching/verdict cut points.
    ASSERT_GT(doc["spans"].arr.size(), 0u);
    std::string stages;
    for (const auto &sp : doc["spans"].arr)
        stages += sp["stage"].asString("") + ",";
    for (const char *stage : {"batch", "gather", "matching", "verdict"})
        EXPECT_NE(stages.find(stage), std::string::npos) << stages;

    // The audit verdict arrived through annotateAudit: the weight gap
    // is attached to the kept trace.
    EXPECT_TRUE(doc["audit"]["sampled"].asBool(false));
    EXPECT_TRUE(doc["audit"]["done"].asBool(false));
    EXPECT_TRUE(doc["audit"].has("weight_gap_decades"));
    EXPECT_GE(doc["audit"]["oracle_weight"].asNumber(-1.0), 0.0);

    // Embedded run info is what `astrea_cli replay --trace-id` uses.
    EXPECT_EQ(doc["context"]["distance"].asUint(0), cfg.distance);
    EXPECT_FALSE(doc["decoder_config"]["name"].asString("").empty());

    // The /traces index surfaces the same trace with its reasons.
    telemetry::TraceQuery q;
    telemetry::JsonValue idx;
    ASSERT_TRUE(telemetry::parseJson(store.indexJson(q), idx));
    EXPECT_GT(idx["traces"].arr.size(), 0u);
    bool found = false;
    for (const auto &t : idx["traces"].arr)
        found |= t["trace_id"].asString("") == telemetry::traceIdHex(id);
    EXPECT_TRUE(found);
}

TEST(DecodeServiceTest, ResolveDecoderNames)
{
    ServeConfig cfg = testConfig();
    DecoderFactory f;
    for (const char *name :
         {"astrea", "astrea-g", "mwpm", "blossom", "windowed-astrea"}) {
        cfg.decoder = name;
        EXPECT_EQ(resolveServeDecoder(cfg, &f), "") << name;
    }
    cfg.decoder = "nope";
    EXPECT_NE(resolveServeDecoder(cfg, &f), "");
}

TEST(DecodeServiceTest, HttpEndpointsRoundTrip)
{
    ServeConfig cfg = testConfig();
    cfg.workers = 2;
    DecodeService svc(cfg);

    std::string error;
    ASSERT_TRUE(svc.start("127.0.0.1", 0, &error)) << error;
    ASSERT_NE(svc.port(), 0);

    // Health flips to ok once both workers have started; poll briefly.
    net::HttpResult res;
    for (int attempt = 0; attempt < 100; attempt++) {
        ASSERT_TRUE(httpGet("127.0.0.1", svc.port(), "/healthz", res,
                            &error))
            << error;
        if (res.status == 200)
            break;
    }
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "ok\n");

    ASSERT_TRUE(
        httpGet("127.0.0.1", svc.port(), "/metrics", res, &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_NE(res.body.find("astrea_serve_decodes_total"),
              std::string::npos);

    ASSERT_TRUE(
        httpGet("127.0.0.1", svc.port(), "/statusz", res, &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.contentType, "application/json");
    telemetry::JsonValue doc;
    ASSERT_TRUE(telemetry::parseJson(res.body, doc));
    EXPECT_EQ(doc["service"].asString(), "astrea_serve");
    EXPECT_EQ(doc["config"]["workers"].asUint(), 2u);

    // Trace endpoints: the index always parses; an unknown id is 404.
    ASSERT_TRUE(
        httpGet("127.0.0.1", svc.port(), "/traces", res, &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.contentType, "application/json");
    ASSERT_TRUE(telemetry::parseJson(res.body, doc));
    EXPECT_EQ(doc["trace_schema_version"].asUint(0), 1u);
    ASSERT_TRUE(httpGet("127.0.0.1", svc.port(),
                        "/traces/0000000000000000", res, &error))
        << error;
    EXPECT_EQ(res.status, 404);

    svc.stop();
    EXPECT_GT(svc.core().totalDecodes(), 0u);
}

} // namespace
