/**
 * @file
 * Tests for the Chrome Trace Event exporter: structural validity of
 * the emitted JSON array, per-thread timestamp monotonicity, matched
 * B/E duration pairs (including spans emitted through ScopedTimer from
 * worker threads), counter/instant event shapes, and the JSON document
 * parser the forensics tooling reads traces back with.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/chrome_trace.hh"
#include "telemetry/json_value.hh"
#include "telemetry/scoped_timer.hh"
#include "telemetry/telemetry.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct TelemetryOn
{
    TelemetryOn() { setEnabled(true); }
    ~TelemetryOn() { setEnabled(false); }
};

/** Parse a finalized trace file into its event array. */
std::vector<JsonValue>
loadTrace(const std::string &path)
{
    JsonValue doc;
    EXPECT_TRUE(parseJson(readFile(path), doc));
    EXPECT_EQ(doc.kind, JsonValue::Array);
    return doc.arr;
}

} // namespace

TEST(JsonValueTest, ParsesDocumentsTheWriterEmits)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson(
        R"({"a":[1,2.5,-3e2],"b":{"s":"x\"y\n"},"t":true,"n":null})",
        doc));
    EXPECT_EQ(doc["a"].arr.size(), 3u);
    EXPECT_DOUBLE_EQ(doc["a"].arr[1].asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(doc["a"].arr[2].asNumber(), -300.0);
    EXPECT_EQ(doc["b"]["s"].asString(), "x\"y\n");
    EXPECT_TRUE(doc["t"].asBool());
    EXPECT_EQ(doc["n"].kind, JsonValue::Null);
    EXPECT_EQ(doc["missing"].asUint(7), 7u);

    JsonValue bad;
    EXPECT_FALSE(parseJson("{\"unterminated\":", bad));
    EXPECT_FALSE(parseJson("[1,2] trailing", bad));
    EXPECT_FALSE(parseJson("", bad));
}

TEST(ChromeTraceTest, EmitsStructurallyValidEventArray)
{
    const std::string path = tempPath("chrome_basic.json");
    {
        ChromeTraceWriter writer(path);
        ASSERT_TRUE(writer.ok());
        writer.begin("alpha");
        writer.counter("occupancy", 3.0);
        writer.instant("capture");
        writer.end("alpha");
        EXPECT_EQ(writer.eventsWritten(), 4u);
    }

    auto events = loadTrace(path);
    ASSERT_EQ(events.size(), 4u);
    for (const JsonValue &e : events) {
        EXPECT_EQ(e["cat"].asString(), "astrea");
        EXPECT_EQ(e["pid"].asUint(), 1u);
        EXPECT_GT(e["tid"].asUint(), 0u);
        EXPECT_GE(e["ts"].asNumber(-1.0), 0.0);
    }
    EXPECT_EQ(events[0]["ph"].asString(), "B");
    EXPECT_EQ(events[1]["ph"].asString(), "C");
    EXPECT_DOUBLE_EQ(events[1]["args"]["value"].asNumber(), 3.0);
    EXPECT_EQ(events[2]["ph"].asString(), "i");
    EXPECT_EQ(events[2]["s"].asString(), "t");
    EXPECT_EQ(events[3]["ph"].asString(), "E");
    EXPECT_EQ(events[3]["name"].asString(), "alpha");
}

TEST(ChromeTraceTest, TimestampsMonotonicAndPairsMatchedPerThread)
{
    const std::string path = tempPath("chrome_threads.json");
    {
        ChromeTraceWriter writer(path);
        auto worker = [&writer](int spans) {
            for (int i = 0; i < spans; i++) {
                writer.begin("outer");
                writer.begin("inner");
                writer.end("inner");
                writer.end("outer");
            }
        };
        std::thread a(worker, 25), b(worker, 25);
        worker(10);
        a.join();
        b.join();
    }

    auto events = loadTrace(path);
    ASSERT_EQ(events.size(), (25u + 25u + 10u) * 4u);

    std::map<uint64_t, double> last_ts;
    std::map<uint64_t, std::vector<std::string>> stacks;
    for (const JsonValue &e : events) {
        uint64_t tid = e["tid"].asUint();
        double ts = e["ts"].asNumber(-1.0);
        // The writer appends under one mutex, so the file order is
        // also per-thread order.
        if (last_ts.count(tid))
            EXPECT_GE(ts, last_ts[tid]);
        last_ts[tid] = ts;

        std::string ph = e["ph"].asString();
        if (ph == "B") {
            stacks[tid].push_back(e["name"].asString());
        } else if (ph == "E") {
            ASSERT_FALSE(stacks[tid].empty());
            EXPECT_EQ(stacks[tid].back(), e["name"].asString());
            stacks[tid].pop_back();
        }
    }
    EXPECT_EQ(last_ts.size(), 3u);  // Three distinct tids.
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed B events on tid " << tid;
}

TEST(ChromeTraceTest, ScopedTimerSpansFlowToGlobalTrace)
{
    TelemetryOn on;
    const std::string path = tempPath("chrome_spans.json");
    setGlobalChromeTraceFile(path);
    {
        ASTREA_SPAN("unit_test");
        {
            ASTREA_SPAN("nested");
        }
    }
    setGlobalChromeTraceFile("");  // Finalize.

    auto events = loadTrace(path);
    ASSERT_EQ(events.size(), 4u);
    // Spans emit their leaf name; order is B(unit_test) B(nested)
    // E(nested) E(unit_test).
    EXPECT_EQ(events[0]["name"].asString(), "unit_test");
    EXPECT_EQ(events[0]["ph"].asString(), "B");
    EXPECT_EQ(events[1]["name"].asString(), "nested");
    EXPECT_EQ(events[2]["name"].asString(), "nested");
    EXPECT_EQ(events[2]["ph"].asString(), "E");
    EXPECT_EQ(events[3]["name"].asString(), "unit_test");
}

TEST(ChromeTraceTest, ReconfiguringMidSpanKeepsPairsBalanced)
{
    TelemetryOn on;
    const std::string first = tempPath("chrome_first.json");
    const std::string second = tempPath("chrome_second.json");
    setGlobalChromeTraceFile(first);
    {
        ASTREA_SPAN("across_reconfig");
        // The span began on the first writer; its end must not land on
        // the second (that would leave first unbalanced and second
        // with a stray E).
        setGlobalChromeTraceFile(second);
        {
            ASTREA_SPAN("on_second");
        }
    }
    setGlobalChromeTraceFile("");

    auto first_events = loadTrace(first);
    ASSERT_EQ(first_events.size(), 1u);
    EXPECT_EQ(first_events[0]["ph"].asString(), "B");

    auto second_events = loadTrace(second);
    ASSERT_EQ(second_events.size(), 2u);
    EXPECT_EQ(second_events[0]["name"].asString(), "on_second");
    EXPECT_EQ(second_events[0]["ph"].asString(), "B");
    EXPECT_EQ(second_events[1]["ph"].asString(), "E");
}
