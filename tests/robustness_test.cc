/**
 * @file
 * Robustness and determinism tests across the stack: thread-count
 * invariance of derived structures, non-default round counts,
 * memory-X decoding through the full decoder set, and behavior at the
 * edges of the supported parameter space.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/memory_experiment.hh"

namespace astrea
{
namespace
{

TEST(Robustness, GwtConstructionIsThreadCountInvariant)
{
    // Rows are computed independently; the table must not depend on
    // how parallelFor shards them.
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-3;

    setenv("ASTREA_THREADS", "1", 1);
    ExperimentContext serial(cfg);
    setenv("ASTREA_THREADS", "4", 1);
    ExperimentContext parallel(cfg);
    unsetenv("ASTREA_THREADS");

    ASSERT_EQ(serial.gwt().size(), parallel.gwt().size());
    for (uint32_t i = 0; i < serial.gwt().size(); i++) {
        for (uint32_t j = 0; j < serial.gwt().size(); j++) {
            EXPECT_EQ(serial.gwt().pairWeight(i, j),
                      parallel.gwt().pairWeight(i, j));
            EXPECT_EQ(serial.gwt().pairObs(i, j),
                      parallel.gwt().pairObs(i, j));
        }
    }
}

TEST(Robustness, ContextRebuildIsDeterministic)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 2e-3;
    ExperimentContext a(cfg);
    ExperimentContext b(cfg);
    EXPECT_EQ(a.errorModel().mechanisms().size(),
              b.errorModel().mechanisms().size());
    EXPECT_EQ(a.graph().edges().size(), b.graph().edges().size());
    for (size_t e = 0; e < a.graph().edges().size(); e++) {
        EXPECT_EQ(a.graph().edges()[e].u, b.graph().edges()[e].u);
        EXPECT_DOUBLE_EQ(a.graph().edges()[e].probability,
                         b.graph().edges()[e].probability);
    }
}

class RoundsOverrideTest
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RoundsOverrideTest, NonDefaultRoundCountsDecode)
{
    // The paper always uses d rounds, but the machinery supports any
    // round count (windowed decoding relies on this).
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.rounds = GetParam();
    cfg.physicalErrorRate = 2e-3;
    ExperimentContext ctx(cfg);
    EXPECT_EQ(ctx.gwt().size(),
              syndromeVectorLength(3, GetParam()));

    auto r = runMemoryExperiment(ctx, mwpmFactory(), 5000, 1);
    EXPECT_EQ(r.logicalErrors.trials, 5000u);
}

INSTANTIATE_TEST_SUITE_P(Rounds, RoundsOverrideTest,
                         ::testing::Values(1u, 2u, 6u, 12u));

TEST(Robustness, MoreRoundsRaisePerCycleErrorExposure)
{
    // Doubling the rounds roughly doubles the error exposure, so the
    // per-shot LER must grow with the round count.
    ExperimentConfig short_cfg;
    short_cfg.distance = 3;
    short_cfg.rounds = 3;
    short_cfg.physicalErrorRate = 3e-3;
    ExperimentConfig long_cfg = short_cfg;
    long_cfg.rounds = 12;

    ExperimentContext short_ctx(short_cfg);
    ExperimentContext long_ctx(long_cfg);
    auto rs = runMemoryExperiment(short_ctx, mwpmFactory(), 60000, 3);
    auto rl = runMemoryExperiment(long_ctx, mwpmFactory(), 60000, 3);
    ASSERT_GT(rs.logicalErrors.successes, 20u);
    EXPECT_GT(rl.ler(), 1.5 * rs.ler());
}

TEST(Robustness, MemoryXFullDecoderSet)
{
    // Every decoder handles the X-basis experiment (symmetry check).
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.basis = Basis::X;
    cfg.physicalErrorRate = 2e-3;
    ExperimentContext ctx(cfg);

    for (const auto &factory :
         {mwpmFactory(), astreaFactory(), astreaGFactory(),
          unionFindFactory(), cliqueFactory(), greedyFactory()}) {
        auto r = runMemoryExperiment(ctx, factory, 10000, 5);
        EXPECT_EQ(r.logicalErrors.trials, 10000u);
        // At d=3 and this p, every decoder should be far better than
        // the ~50% of random guessing.
        EXPECT_LT(r.ler(), 0.1);
    }
}

TEST(Robustness, VeryLowPhysicalErrorRate)
{
    // p = 1e-6: almost every shot is trivial; nothing should crash and
    // the LER should be ~0 at this shot budget.
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-6;
    ExperimentContext ctx(cfg);
    auto r = runMemoryExperiment(ctx, astreaFactory(), 50000, 7);
    EXPECT_EQ(r.logicalErrors.successes, 0u);
    EXPECT_GT(r.hammingWeights.frequency(0), 0.99);
}

TEST(Robustness, HighPhysicalErrorRateStaysFunctional)
{
    // p = 2e-2 is far above threshold: decoding barely helps, but the
    // full stack must stay well-defined (HW can exceed 60 here, so
    // Astrea-G may give up; MWPM must not).
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 2e-2;
    ExperimentContext ctx(cfg);
    auto r = runMemoryExperiment(ctx, mwpmFactory(), 3000, 9);
    EXPECT_EQ(r.logicalErrors.trials, 3000u);
    EXPECT_LT(r.ler(), 0.5);
}

TEST(Robustness, LargeDistanceBuilds)
{
    // d = 11 (the appendix's scale): the full pipeline builds and
    // decodes within sane time.
    ExperimentConfig cfg;
    cfg.distance = 11;
    cfg.physicalErrorRate = 1e-4;
    ExperimentContext ctx(cfg);
    EXPECT_EQ(ctx.gwt().size(), syndromeVectorLength(11, 11));
    auto r = runMemoryExperiment(ctx, astreaGFactory(), 2000, 11);
    EXPECT_EQ(r.logicalErrors.trials, 2000u);
}

} // namespace
} // namespace astrea
