/**
 * @file
 * Tests for the HW6Decoder and the Astrea decoder: table sizes, the
 * exactness property (Astrea == true MWPM over quantized weights for
 * HW <= 10), the latency model (paper Sec. 5.4), and give-up behavior.
 */

#include <gtest/gtest.h>

#include "astrea/astrea_decoder.hh"
#include "astrea/hw6.hh"
#include "common/rng.hh"
#include "harness/memory_experiment.hh"
#include "matching/dp_matcher.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
sharedContext()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = 2e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

// ---------------------------------------------------------------- HW6

TEST(Hw6, TableSizes)
{
    Hw6Decoder hw6;
    EXPECT_EQ(hw6.matchingTable(2).size(), 1u);
    EXPECT_EQ(hw6.matchingTable(4).size(), 3u);
    EXPECT_EQ(hw6.matchingTable(6).size(), 15u);
    EXPECT_EQ(Hw6Decoder::kNumAdders, 30);
}

TEST(Hw6, EmptyInput)
{
    Hw6Decoder hw6;
    PairList out;
    EXPECT_EQ(hw6.match(0, [](int, int) { return WeightSum{1}; }, out),
              0u);
    EXPECT_TRUE(out.empty());
}

TEST(Hw6, TwoNodes)
{
    Hw6Decoder hw6;
    PairList out;
    WeightSum w = hw6.match(
        2, [](int, int) { return WeightSum{7}; }, out);
    EXPECT_EQ(w, 7u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], (std::pair<int, int>{0, 1}));
}

TEST(Hw6, SixNodesFindsOptimum)
{
    // Weight 1 on the target pairs, 50 elsewhere.
    auto w = [](int i, int j) -> WeightSum {
        auto good = [](int a, int b) {
            return (a == 0 && b == 5) || (a == 1 && b == 3) ||
                   (a == 2 && b == 4);
        };
        return good(std::min(i, j), std::max(i, j)) ? 1 : 50;
    };
    Hw6Decoder hw6;
    PairList out;
    EXPECT_EQ(hw6.match(6, w, out), 3u);
}

TEST(Hw6, PropagatesInfiniteWeight)
{
    Hw6Decoder hw6;
    PairList out;
    WeightSum w = hw6.match(
        6, [](int, int) { return kInfiniteWeightSum; }, out);
    EXPECT_EQ(w, kInfiniteWeightSum);
}

TEST(Hw6, RejectsOddCount)
{
    Hw6Decoder hw6;
    PairList out;
    EXPECT_DEATH(hw6.match(3, [](int, int) { return WeightSum{1}; },
                           out),
                 "nodes");
}

// ------------------------------------------------------- latency model

TEST(AstreaLatency, CycleModelMatchesPaper)
{
    // Sec. 5.4: decode cycles 1 / 11 / 103 for HW 3-6 / 7-8 / 9-10,
    // plus HW+1 transfer cycles; HW <= 2 is free.
    EXPECT_EQ(AstreaDecoder::totalCycles(0), 0u);
    EXPECT_EQ(AstreaDecoder::totalCycles(1), 0u);
    EXPECT_EQ(AstreaDecoder::totalCycles(2), 0u);
    EXPECT_EQ(AstreaDecoder::totalCycles(3), 5u);
    EXPECT_EQ(AstreaDecoder::totalCycles(6), 8u);
    EXPECT_EQ(AstreaDecoder::totalCycles(7), 19u);
    EXPECT_EQ(AstreaDecoder::totalCycles(8), 20u);
    EXPECT_EQ(AstreaDecoder::totalCycles(9), 113u);
    EXPECT_EQ(AstreaDecoder::totalCycles(10), 114u);
}

TEST(AstreaLatency, WorstCaseIs456ns)
{
    // 114 cycles at 250 MHz = 456 ns (paper abstract and Sec. 5.4).
    EXPECT_DOUBLE_EQ(cyclesToNs(AstreaDecoder::totalCycles(10)), 456.0);
}

TEST(AstreaLatency, Hw6CaseIs32ns)
{
    // d = 3 max in Fig. 9: 8 cycles = 32 ns.
    EXPECT_DOUBLE_EQ(cyclesToNs(AstreaDecoder::totalCycles(6)), 32.0);
}

TEST(AstreaLatency, Hw8CaseIs80ns)
{
    // d = 5 max in Fig. 9: 20 cycles = 80 ns.
    EXPECT_DOUBLE_EQ(cyclesToNs(AstreaDecoder::totalCycles(8)), 80.0);
}

// ------------------------------------------------------------- decode

TEST(AstreaDecode, EmptySyndrome)
{
    AstreaDecoder dec(sharedContext().gwt());
    DecodeResult r = dec.decode({});
    EXPECT_FALSE(r.gaveUp);
    EXPECT_EQ(r.obsMask, 0u);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(AstreaDecode, GivesUpAboveMaxHw)
{
    AstreaDecoder dec(sharedContext().gwt());
    std::vector<uint32_t> defects;
    for (uint32_t i = 0; i < 11; i++)
        defects.push_back(i);
    DecodeResult r = dec.decode(defects);
    EXPECT_TRUE(r.gaveUp);
    EXPECT_EQ(dec.gaveUpCount(), 1u);
}

TEST(AstreaDecode, ConfigurableMaxHw)
{
    AstreaDecoder dec(sharedContext().gwt(), AstreaConfig{6});
    std::vector<uint32_t> defects{0, 1, 2, 3, 4, 5, 6};
    EXPECT_TRUE(dec.decode(defects).gaveUp);
    EXPECT_FALSE(dec.decode({0, 1, 2}).gaveUp);
}

/**
 * Exactness property: for every Hamming weight up to 10, Astrea's
 * brute-force result equals the true MWPM (computed by the DP with
 * boundary) over the same quantized weights.
 */
class AstreaExactnessTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AstreaExactnessTest, MatchesDpOptimum)
{
    const int hw = GetParam();
    const auto &ctx = sharedContext();
    const auto &gwt = ctx.gwt();
    AstreaDecoder dec(gwt);
    Rng rng(500 + hw);

    for (int trial = 0; trial < 40; trial++) {
        // Random distinct defect set of the requested size.
        std::vector<uint32_t> defects;
        while (defects.size() < static_cast<size_t>(hw)) {
            uint32_t d =
                static_cast<uint32_t>(rng.uniformInt(gwt.size()));
            if (std::find(defects.begin(), defects.end(), d) ==
                defects.end()) {
                defects.push_back(d);
            }
        }
        std::sort(defects.begin(), defects.end());

        DecodeResult r = dec.decode(defects);
        ASSERT_FALSE(r.gaveUp);

        MatchingSolution dp = dpMatchWithBoundary(
            hw,
            [&](int i, int j) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[j]));
            },
            [&](int i) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[i]));
            });

        EXPECT_NEAR(r.matchingWeight * kWeightScale, dp.totalWeight,
                    1e-6)
            << "hw=" << hw << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(HammingWeights, AstreaExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

/** Same exactness property, exact-weight ablation configuration. */
class AstreaExactWeightTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AstreaExactWeightTest, MatchesDpOnExactWeights)
{
    const int hw = GetParam();
    const auto &ctx = sharedContext();
    const auto &gwt = ctx.gwt();
    AstreaConfig cfg;
    cfg.quantizedWeights = false;
    AstreaDecoder dec(gwt, cfg);
    Rng rng(900 + hw);

    for (int trial = 0; trial < 25; trial++) {
        std::vector<uint32_t> defects;
        while (defects.size() < static_cast<size_t>(hw)) {
            uint32_t d =
                static_cast<uint32_t>(rng.uniformInt(gwt.size()));
            if (std::find(defects.begin(), defects.end(), d) ==
                defects.end()) {
                defects.push_back(d);
            }
        }
        std::sort(defects.begin(), defects.end());

        DecodeResult r = dec.decode(defects);
        ASSERT_FALSE(r.gaveUp);

        MatchingSolution dp = dpMatchWithBoundary(
            hw,
            [&](int i, int j) {
                return gwt.exactWeight(defects[i], defects[j]);
            },
            [&](int i) {
                return gwt.exactWeight(defects[i], defects[i]);
            });
        // The exact-mode fixed point has 2^-16-decade granularity.
        EXPECT_NEAR(r.matchingWeight, dp.totalWeight, 1e-3)
            << "hw=" << hw << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(HammingWeights, AstreaExactWeightTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(AstreaDecode, AgreesWithMwpmOnRealShots)
{
    // On sampled syndromes with HW <= 10, Astrea's matching weight can
    // differ from the exact-weight MWPM only through 8-bit
    // quantization; predictions should almost always coincide.
    const auto &ctx = sharedContext();
    AstreaDecoder astrea_dec(ctx.gwt());
    auto mwpm = mwpmFactory()(ctx);

    Rng rng(9);
    BitVec dets, obs;
    int disagreements = 0, decoded = 0;
    for (int s = 0; s < 3000; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        decoded++;
        DecodeResult a = astrea_dec.decode(defects);
        DecodeResult m = mwpm->decode(defects);
        if (a.obsMask != m.obsMask)
            disagreements++;
    }
    ASSERT_GT(decoded, 500);
    // Quantization ties can flip rare predictions; bound the rate.
    EXPECT_LT(disagreements, decoded / 50);
}

TEST(AstreaDecode, LatencyFollowsHammingWeight)
{
    const auto &ctx = sharedContext();
    AstreaDecoder dec(ctx.gwt());
    Rng rng(11);
    BitVec dets, obs;
    for (int s = 0; s < 2000; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        DecodeResult r = dec.decode(defects);
        EXPECT_EQ(r.cycles, AstreaDecoder::totalCycles(
                                static_cast<uint32_t>(defects.size())));
        EXPECT_DOUBLE_EQ(r.latencyNs, cyclesToNs(r.cycles));
    }
}

} // namespace
} // namespace astrea
