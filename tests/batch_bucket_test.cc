/**
 * @file
 * Shot-major wide decoding: bucketing edge cases and the batch/single
 * parity suite.
 *
 * AstreaDecoder::decodeBatch groups same-HW shots into SoA tile
 * buckets and runs the matching kernels back-to-back; the contract is
 * that every DecodeResult is bit-identical to per-shot decodeInto().
 * This suite drives the wide path through its edge cases — empty
 * syndromes, odd Hamming weights (boundary-augmented tiles), give-up
 * shots interleaved mid-batch, buckets larger than one lane group —
 * and holds 1k seeded sampled batches per distance to exact parity,
 * including the decoders' running stats.
 */

#include <gtest/gtest.h>

#include <vector>

#include "astrea/astrea_decoder.hh"
#include "astrea/astrea_g_decoder.hh"
#include "astrea/lwt_tile.hh"
#include "common/rng.hh"
#include "harness/memory_experiment.hh"

namespace astrea
{
namespace
{

/** One context per distance, shared across tests (GWT builds are the
 *  slow part). */
ExperimentContext &
contextFor(uint32_t distance)
{
    static std::vector<std::unique_ptr<ExperimentContext>> cache;
    for (auto &ctx : cache) {
        if (ctx->config().distance == distance)
            return *ctx;
    }
    ExperimentConfig cfg;
    cfg.distance = distance;
    cfg.physicalErrorRate = 1e-3;
    cache.push_back(std::make_unique<ExperimentContext>(cfg));
    return *cache.back();
}

/**
 * Decode `batch` through `wide`'s decodeBatch and through `single`'s
 * per-shot decodeInto and require bit-identical results per shot.
 */
void
expectWideMatchesSingle(Decoder &wide, Decoder &single,
                        const SyndromeBatch &batch,
                        std::vector<DecodeResult> &results,
                        DecodeScratch &wide_scratch,
                        DecodeScratch &single_scratch)
{
    wide.decodeBatch(batch, results, wide_scratch);
    ASSERT_GE(results.size(), batch.size());
    DecodeResult ref;
    for (size_t i = 0; i < batch.size(); i++) {
        single.decodeInto(batch.at(i), ref, single_scratch);
        const DecodeResult &got = results[i];
        ASSERT_EQ(got.obsMask, ref.obsMask) << "shot " << i;
        ASSERT_EQ(got.gaveUp, ref.gaveUp) << "shot " << i;
        ASSERT_EQ(got.cycles, ref.cycles) << "shot " << i;
        ASSERT_EQ(got.latencyNs, ref.latencyNs) << "shot " << i;
        ASSERT_EQ(got.matchingWeight, ref.matchingWeight)
            << "shot " << i;
        ASSERT_EQ(got.matchedPairs, ref.matchedPairs)
            << "shot " << i;
    }
}

TEST(BatchBucket, EmptySyndromesDecodeTrivially)
{
    ExperimentContext &ctx = contextFor(3);
    AstreaDecoder wide(ctx.gwt());
    AstreaDecoder single(ctx.gwt());

    SyndromeBatch batch;
    batch.add(std::vector<uint32_t>{});
    batch.add(std::vector<uint32_t>{0, 1});
    batch.add(std::vector<uint32_t>{});
    batch.add(std::vector<uint32_t>{2});
    batch.add(std::vector<uint32_t>{});

    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;
    expectWideMatchesSingle(wide, single, batch, results, ws, ss);
    EXPECT_EQ(results[0].cycles, 0u);
    EXPECT_EQ(results[0].obsMask, 0u);
    EXPECT_FALSE(results[0].gaveUp);
    EXPECT_EQ(wide.stats().trivialDecodes, 5u);  // HW 0, 1 and 2.
    EXPECT_EQ(wide.stats().decodes, 5u);
}

TEST(BatchBucket, EmptyBatchIsANoOp)
{
    ExperimentContext &ctx = contextFor(3);
    AstreaDecoder wide(ctx.gwt());
    SyndromeBatch batch;
    std::vector<DecodeResult> results;
    DecodeScratch scratch;
    wide.decodeBatch(batch, results, scratch);
    EXPECT_EQ(wide.stats().decodes, 0u);
}

TEST(BatchBucket, OddHwShotsUseTheBoundaryAugmentedPath)
{
    // Odd defect counts gather one virtual boundary node; the wide
    // bucket fixes that geometry per bucket. Every odd HW from 1 to 9
    // must agree with the per-shot path, and the reported pairings
    // must show the -1 boundary sentinel where the virtual node won.
    ExperimentContext &ctx = contextFor(5);
    AstreaDecoder wide(ctx.gwt());
    AstreaDecoder single(ctx.gwt());

    Rng rng(0x0dd);
    BitVec dets, obs;
    SyndromeBatch batch;
    size_t guard = 0;
    size_t odd_shots = 0;
    while (odd_shots < 40 && ++guard < 4000000) {
        ctx.sampler().sample(rng, dets, obs);
        const size_t hw = dets.popcount();
        if (hw % 2 == 1 && hw <= 9) {
            batch.add(dets.onesIndices());
            odd_shots++;
        }
    }
    ASSERT_EQ(odd_shots, 40u);

    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;
    expectWideMatchesSingle(wide, single, batch, results, ws, ss);

    bool saw_boundary_pair = false;
    for (size_t i = 0; i < batch.size(); i++) {
        for (const auto &[a, b] : results[i].matchedPairs)
            if (b == -1)
                saw_boundary_pair = true;
    }
    EXPECT_TRUE(saw_boundary_pair)
        << "no odd shot matched through the virtual boundary node";
}

TEST(BatchBucket, GiveUpShotsInterleavedInABatch)
{
    // HW > maxHammingWeight shots scattered through a batch must come
    // back flagged gaveUp with zeroed outcomes, without disturbing
    // their decodable neighbors.
    ExperimentContext &ctx = contextFor(5);
    AstreaDecoder wide(ctx.gwt());
    AstreaDecoder single(ctx.gwt());
    const uint32_t n = ctx.gwt().size();
    ASSERT_GE(n, 16u);

    auto synthetic = [&](uint32_t hw) {
        std::vector<uint32_t> defects;
        for (uint32_t i = 0; i < hw; i++)
            defects.push_back(i);
        return defects;
    };

    SyndromeBatch batch;
    batch.add(synthetic(4));
    batch.add(synthetic(12));  // Give-up.
    batch.add(synthetic(7));
    batch.add(synthetic(16));  // Give-up.
    batch.add(synthetic(2));
    batch.add(synthetic(11));  // Give-up.
    batch.add(synthetic(10));

    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;
    expectWideMatchesSingle(wide, single, batch, results, ws, ss);
    EXPECT_TRUE(results[1].gaveUp);
    EXPECT_TRUE(results[3].gaveUp);
    EXPECT_TRUE(results[5].gaveUp);
    EXPECT_FALSE(results[0].gaveUp);
    EXPECT_FALSE(results[6].gaveUp);
    EXPECT_EQ(results[1].obsMask, 0u);
    EXPECT_EQ(results[1].cycles, 0u);
    EXPECT_EQ(wide.stats().gaveUps, 3u);
    EXPECT_EQ(wide.stats().decodes, 7u);
}

TEST(BatchBucket, BucketsLargerThanOneLaneGroup)
{
    // More same-HW shots than LwtTileBlock::kMaxLanes forces multiple
    // bucket groups; every lane of every group must land on the right
    // result slot.
    ExperimentContext &ctx = contextFor(3);
    AstreaDecoder wide(ctx.gwt());
    AstreaDecoder single(ctx.gwt());
    const uint32_t n = ctx.gwt().size();
    ASSERT_GE(n, 8u);

    Rng rng(77);
    SyndromeBatch batch;
    const int shots = 3 * LwtTileBlock::kMaxLanes + 5;
    for (int s = 0; s < shots; s++) {
        // Distinct 4-defect sets, strictly increasing indices.
        std::vector<uint32_t> defects;
        uint32_t base = rng.uniformInt(n - 7);
        defects = {base, base + 2, base + 5, base + 7};
        batch.add(defects);
    }

    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;
    expectWideMatchesSingle(wide, single, batch, results, ws, ss);
}

class BatchParityTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BatchParityTest, SampledBatchesAreBitIdenticalToPerShot)
{
    // The headline parity suite: 1k seeded batches per distance
    // through the wide path vs per-shot decodeInto, every result field
    // compared exactly, and the decoders' running stats identical at
    // the end.
    const uint32_t distance = GetParam();
    ExperimentContext &ctx = contextFor(distance);
    AstreaDecoder wide(ctx.gwt());
    AstreaDecoder single(ctx.gwt());

    Rng rng(0xba7c4 + distance);
    BitVec dets, obs;
    SyndromeBatch batch;
    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;

    for (int b = 0; b < 1000; b++) {
        batch.clear();
        for (int s = 0; s < 16; s++) {
            ctx.sampler().sample(rng, dets, obs);
            batch.add(dets.onesIndices());
        }
        expectWideMatchesSingle(wide, single, batch, results, ws,
                                ss);
        if (HasFatalFailure())
            return;
    }

    // Stats parity: the bulk bucket bookkeeping must add up to
    // exactly what the per-shot path counted.
    EXPECT_EQ(wide.stats().decodes, single.stats().decodes);
    EXPECT_EQ(wide.stats().trivialDecodes,
              single.stats().trivialDecodes);
    EXPECT_EQ(wide.stats().hw6Invocations,
              single.stats().hw6Invocations);
    EXPECT_EQ(wide.stats().weightTransferCycles,
              single.stats().weightTransferCycles);
    EXPECT_EQ(wide.stats().gaveUps, single.stats().gaveUps);
    EXPECT_GT(wide.stats().decodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Distances, BatchParityTest,
                         ::testing::Values(3, 5, 7));

TEST(BatchBucket, AstreaGMixedBatchMatchesSingle)
{
    // Astrea-G splits a batch: exhaustive-range shots ride the wide
    // path, pipeline (HW > exhaustiveMaxHw) and give-up shots decode
    // per shot. Synthetic high-HW shots force all three routes into
    // one batch.
    ExperimentContext &ctx = contextFor(5);
    AstreaGConfig gcfg;
    gcfg.weightThresholdDecades =
        defaultWeightThreshold(5, 1e-3);
    AstreaGDecoder wide(ctx.gwt(), gcfg);
    AstreaGDecoder single(ctx.gwt(), gcfg);
    const uint32_t n = ctx.gwt().size();
    ASSERT_GE(n, 48u);

    Rng rng(0x6eee);
    BitVec dets, obs;
    SyndromeBatch batch;
    for (int s = 0; s < 48; s++) {
        ctx.sampler().sample(rng, dets, obs);
        batch.add(dets.onesIndices());
    }
    // Interleave pipeline-weight shots (exhaustiveMaxHw < HW <=
    // maxDefects): spread defects so the pipeline has candidates.
    for (uint32_t hw : {12u, 14u, 13u}) {
        std::vector<uint32_t> defects;
        for (uint32_t i = 0; i < hw; i++)
            defects.push_back(i * (n / hw));
        batch.add(defects);
    }

    std::vector<DecodeResult> results;
    DecodeScratch ws, ss;
    expectWideMatchesSingle(wide, single, batch, results, ws, ss);
    EXPECT_EQ(wide.stats().decodes, single.stats().decodes);
    EXPECT_EQ(wide.stats().pipelineDecodes,
              single.stats().pipelineDecodes);
    EXPECT_GT(wide.stats().pipelineDecodes, 0u);
}

} // namespace
} // namespace astrea
