/**
 * @file
 * Tests for Astrea-G: pipeline correctness against the exact DP on
 * high-Hamming-weight syndromes, filtering behavior (Insight #1),
 * greedy ordering (Insight #2), budget handling, and stats counters.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "astrea/astrea_g_decoder.hh"
#include "common/rng.hh"
#include "harness/memory_experiment.hh"
#include "matching/dp_matcher.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
d7Context()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 7;
        cfg.physicalErrorRate = 1e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

std::vector<uint32_t>
randomDefects(Rng &rng, uint32_t count, uint32_t universe)
{
    std::vector<uint32_t> defects;
    while (defects.size() < count) {
        uint32_t d = static_cast<uint32_t>(rng.uniformInt(universe));
        if (std::find(defects.begin(), defects.end(), d) ==
            defects.end()) {
            defects.push_back(d);
        }
    }
    std::sort(defects.begin(), defects.end());
    return defects;
}

TEST(AstreaG, LowHwUsesExhaustivePath)
{
    const auto &ctx = d7Context();
    AstreaGDecoder dec(ctx.gwt());
    Rng rng(1);
    auto defects = randomDefects(rng, 6, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_FALSE(r.gaveUp);
    // Exhaustive path's latency model, not the pipeline's.
    EXPECT_EQ(r.cycles, AstreaDecoder::totalCycles(6));
    EXPECT_EQ(dec.stats().pipelineDecodes, 0u);
}

TEST(AstreaG, PipelineEngagesAboveMaxHw)
{
    // Uniformly random defects are far apart, so the default Wth = 7
    // filter would starve the pipeline; disable it for this test (real
    // syndromes have clustered defects).
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.weightThresholdDecades = 30.0;
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(2);
    auto defects = randomDefects(rng, 12, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_EQ(dec.stats().pipelineDecodes, 1u);
    EXPECT_FALSE(r.gaveUp);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.cycles, dec.config().cycleBudget);
}

/**
 * With the filter disabled (huge Wth) and a generous budget, the
 * greedy pipeline with generous queue parameters must find the true
 * MWPM for moderate sizes — greediness only risks losing optimality
 * through eviction and the budget.
 */
TEST(AstreaG, UnfilteredGenerousSearchIsExact)
{
    const auto &ctx = d7Context();
    const auto &gwt = ctx.gwt();
    AstreaGConfig cfg;
    cfg.weightThresholdDecades = 30.0;  // Effectively no filter.
    cfg.cycleBudget = 2000000;
    cfg.fetchWidth = 14;       // Wide enough to commit every candidate.
    cfg.queueCapacity = 4096;  // No eviction.
    AstreaGDecoder dec(gwt, cfg);

    Rng rng(3);
    for (int trial = 0; trial < 10; trial++) {
        auto defects = randomDefects(rng, 12, gwt.size());
        DecodeResult r = dec.decode(defects);
        ASSERT_FALSE(r.gaveUp);

        MatchingSolution dp = dpMatchWithBoundary(
            12,
            [&](int i, int j) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[j]));
            },
            [&](int i) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[i]));
            });
        EXPECT_NEAR(r.matchingWeight * kWeightScale, dp.totalWeight,
                    1e-6)
            << "trial " << trial;
    }
    EXPECT_EQ(dec.stats().budgetExpirations, 0u);
}

TEST(AstreaG, DefaultConfigFindsNearOptimalMatchings)
{
    // With paper defaults (F=2, E=8, Wth=7) the matching found on real
    // d=7 p=1e-3 high-HW shots should nearly always equal the exact
    // optimum (that is the design claim of Sec. 7).
    const auto &ctx = d7Context();
    const auto &gwt = ctx.gwt();
    AstreaGDecoder dec(gwt);

    Rng rng(4);
    BitVec dets, obs;
    int pipeline_shots = 0, optimal = 0;
    while (pipeline_shots < 25) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.size() <= 10 || defects.size() > 18)
            continue;
        pipeline_shots++;
        DecodeResult r = dec.decode(defects);
        if (r.gaveUp)
            continue;
        MatchingSolution dp = dpMatchWithBoundary(
            static_cast<int>(defects.size()),
            [&](int i, int j) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[j]));
            },
            [&](int i) {
                return static_cast<double>(
                    gwt.pairWeight(defects[i], defects[i]));
            });
        if (std::abs(r.matchingWeight * kWeightScale - dp.totalWeight) <
            1e-6) {
            optimal++;
        }
    }
    EXPECT_GE(optimal, 20) << "greedy search should usually be optimal";
}

TEST(AstreaG, RespectsCycleBudget)
{
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.cycleBudget = 40;
    cfg.weightThresholdDecades = 30.0;
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(5);
    auto defects = randomDefects(rng, 16, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_LE(r.cycles, 40u + 1u);
    EXPECT_LE(r.latencyNs, cyclesToNs(41));
}

TEST(AstreaG, TightBudgetIncreasesExpirationStat)
{
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.cycleBudget = 20;  // Almost no iterations for HW 16.
    cfg.weightThresholdDecades = 30.0;
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(6);
    for (int t = 0; t < 5; t++) {
        auto defects = randomDefects(rng, 16, ctx.gwt().size());
        dec.decode(defects);
    }
    EXPECT_GT(dec.stats().budgetExpirations, 0u);
}

TEST(AstreaG, AggressiveFilterCanForceGiveUp)
{
    // With Wth = 0 every candidate pair is filtered out; the pipeline
    // cannot complete any matching.
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.weightThresholdDecades = 0.0;
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(7);
    auto defects = randomDefects(rng, 12, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_TRUE(r.gaveUp);
    EXPECT_GT(dec.stats().gaveUps, 0u);
}

TEST(AstreaG, SurvivingPairCountsShrinkWithThreshold)
{
    // Fig. 10(b): lowering Wth removes candidate pairs.
    const auto &ctx = d7Context();
    Rng rng(8);
    auto defects = randomDefects(rng, 16, ctx.gwt().size());

    AstreaGConfig loose;
    loose.weightThresholdDecades = 30.0;
    AstreaGConfig tight;
    tight.weightThresholdDecades = 6.0;

    AstreaGDecoder loose_dec(ctx.gwt(), loose);
    AstreaGDecoder tight_dec(ctx.gwt(), tight);
    auto loose_counts = loose_dec.survivingPairCounts(defects);
    auto tight_counts = tight_dec.survivingPairCounts(defects);

    uint64_t loose_total = 0, tight_total = 0;
    for (size_t i = 0; i < defects.size(); i++) {
        EXPECT_LE(tight_counts[i], loose_counts[i]);
        loose_total += loose_counts[i];
        tight_total += tight_counts[i];
    }
    EXPECT_EQ(loose_total,
              defects.size() * (defects.size() - 1));  // Complete graph.
    EXPECT_LT(tight_total, loose_total);
}

TEST(AstreaG, StatsCountersAreConsistent)
{
    const auto &ctx = d7Context();
    AstreaGDecoder dec(ctx.gwt());
    Rng rng(9);
    BitVec dets, obs;
    const int shots = 500;
    for (int s = 0; s < shots; s++) {
        ctx.sampler().sample(rng, dets, obs);
        dec.decode(dets.onesIndices());
    }
    const auto &st = dec.stats();
    EXPECT_EQ(st.decodes, static_cast<uint64_t>(shots));
    EXPECT_EQ(st.pipelineDecodes,
              st.exhaustedSearches + st.budgetExpirations);
    EXPECT_LE(st.gaveUps, st.pipelineDecodes);
}

TEST(AstreaG, GivesUpBeyondMaskCapacity)
{
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.maxDefects = 14;
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(10);
    auto defects = randomDefects(rng, 15, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_TRUE(r.gaveUp);
}

TEST(AstreaG, RejectsZeroFetchWidth)
{
    AstreaGConfig cfg;
    cfg.fetchWidth = 0;
    EXPECT_DEATH(AstreaGDecoder(d7Context().gwt(), cfg), "invalid");
}

TEST(AstreaG, ContinuationsImproveOrMatchMatchingWeight)
{
    // With continuations the pipeline explores a superset of the
    // no-continuation search, so the found matching weight can only
    // improve (same Wth, same budget).
    const auto &ctx = d7Context();
    AstreaGConfig with_cfg;
    with_cfg.weightThresholdDecades = 30.0;
    AstreaGConfig without_cfg = with_cfg;
    without_cfg.requeueContinuations = false;
    AstreaGDecoder with_cont(ctx.gwt(), with_cfg);
    AstreaGDecoder without_cont(ctx.gwt(), without_cfg);

    // Uniformly random defect sets are much harder than sampled
    // syndromes (no obvious light pairs), so the wider search's strict
    // advantage is visible there.
    Rng rng(31);
    int improved = 0;
    for (int trial = 0; trial < 30; trial++) {
        auto defects = randomDefects(rng, 14, ctx.gwt().size());
        DecodeResult a = with_cont.decode(defects);
        DecodeResult b = without_cont.decode(defects);
        if (a.gaveUp || b.gaveUp)
            continue;
        EXPECT_LE(a.matchingWeight, b.matchingWeight + 1e-9);
        if (a.matchingWeight < b.matchingWeight - 1e-9)
            improved++;
    }
    // The superset search should strictly win at least sometimes.
    EXPECT_GT(improved, 0);
}

TEST(AstreaG, ContinuationsExtendSearchDuration)
{
    const auto &ctx = d7Context();
    AstreaGConfig with_cfg;
    AstreaGConfig without_cfg;
    without_cfg.requeueContinuations = false;
    AstreaGDecoder with_cont(ctx.gwt(), with_cfg);
    AstreaGDecoder without_cont(ctx.gwt(), without_cfg);

    Rng rng(33);
    auto defects = randomDefects(rng, 16, ctx.gwt().size());
    DecodeResult a = with_cont.decode(defects);
    DecodeResult b = without_cont.decode(defects);
    EXPECT_GE(a.cycles, b.cycles);
}

TEST(AstreaG, OddHighHwDecodes)
{
    const auto &ctx = d7Context();
    AstreaGConfig cfg;
    cfg.weightThresholdDecades = 30.0;  // Random defects are spread out.
    AstreaGDecoder dec(ctx.gwt(), cfg);
    Rng rng(11);
    auto defects = randomDefects(rng, 13, ctx.gwt().size());
    DecodeResult r = dec.decode(defects);
    EXPECT_FALSE(r.gaveUp);
}

} // namespace
} // namespace astrea
