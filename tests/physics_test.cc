/**
 * @file
 * Physics-golden tests: the canonical error events of paper Fig. 5
 * must produce exactly the detector symptoms the surface-code
 * literature prescribes — space events (data errors), time events
 * (measurement/reset errors), and the structural properties of the
 * decoding graph that follow.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dem/extractor.hh"
#include "harness/memory_experiment.hh"
#include "sim/frame_sim.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{
namespace
{

/** Fixture holding a noiseless-d=3 circuit plus helper lookups. */
class PhysicsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        layout_ = std::make_unique<SurfaceCodeLayout>(3);
        MemoryExperimentSpec spec;
        spec.distance = 3;
        spec.noise = NoiseModel::noiseless();
        circuit_ = std::make_unique<Circuit>(
            buildMemoryCircuit(*layout_, spec));
        sim_ = std::make_unique<FrameSimulator>(*circuit_);
    }

    /** Detector index for (plaquette-within-Z-order, round). */
    uint32_t
    detector(uint32_t z_slot, uint32_t round) const
    {
        // The generator emits (d^2-1)/2 = 4 Z detectors per round in a
        // fixed plaquette order; round d (=3) is the final comparison.
        return round * 4 + z_slot;
    }

    /** Symptoms of an X fault on `qubit` injected after op `op`. */
    std::set<uint32_t>
    xSymptoms(size_t op, uint32_t qubit)
    {
        BitVec dets, obs;
        sim_->propagateInjection(op, {{qubit, true, false}}, dets,
                                 obs);
        auto ones = dets.onesIndices();
        return {ones.begin(), ones.end()};
    }

    /** Find the op index of the r-th ancilla measurement layer. */
    size_t
    measurementOp(uint32_t round) const
    {
        uint32_t seen = 0;
        const auto &ops = circuit_->instructions();
        for (size_t i = 0; i < ops.size(); i++) {
            if (ops[i].type == GateType::M) {
                if (seen == round)
                    return i;
                seen++;
            }
        }
        return ops.size();
    }

    std::unique_ptr<SurfaceCodeLayout> layout_;
    std::unique_ptr<Circuit> circuit_;
    std::unique_ptr<FrameSimulator> sim_;
};

TEST_F(PhysicsTest, SpaceEventFlipsAdjacentZStabilizers)
{
    // An X error on a data qubit at the start of a round (paper
    // Fig. 5a) flips the detectors of exactly its adjacent Z
    // plaquettes, in that same round.
    // Inject right after the initial resets (ops 0/1 are R layers).
    for (uint32_t r = 0; r < 3; r++) {
        for (uint32_t c = 0; c < 3; c++) {
            uint32_t q = layout_->dataQubit(r, c);
            auto symptoms = xSymptoms(1, q);

            // Expected: one symptom per adjacent Z plaquette, round 0.
            std::set<uint32_t> expect;
            const auto &zs = layout_->plaquettesOf(Basis::Z);
            for (uint32_t slot = 0; slot < zs.size(); slot++) {
                for (auto corner :
                     layout_->plaquettes()[zs[slot]].corners) {
                    if (corner == q)
                        expect.insert(detector(slot, 0));
                }
            }
            EXPECT_EQ(symptoms, expect) << "data qubit " << q;
            EXPECT_GE(expect.size(), 1u);
            EXPECT_LE(expect.size(), 2u);
        }
    }
}

TEST_F(PhysicsTest, TimeEventFlipsConsecutiveRounds)
{
    // A measurement flip on a Z ancilla in round 1 (paper Fig. 5b)
    // flips that plaquette's detectors in rounds 1 and 2 only.
    const auto &zs = layout_->plaquettesOf(Basis::Z);
    size_t m_op = measurementOp(1);
    for (uint32_t slot = 0; slot < zs.size(); slot++) {
        uint32_t anc = layout_->plaquettes()[zs[slot]].ancilla;
        // Inject X on the ancilla just before its round-1 measurement.
        auto symptoms = xSymptoms(m_op - 1, anc);
        std::set<uint32_t> expect{detector(slot, 1), detector(slot, 2)};
        EXPECT_EQ(symptoms, expect) << "Z slot " << slot;
    }
}

TEST_F(PhysicsTest, FinalRoundMeasurementErrorFlipsLastComparisons)
{
    // A measurement flip in the last extraction round (round 2) flips
    // the round-2 detector and the final data-comparison detector.
    const auto &zs = layout_->plaquettesOf(Basis::Z);
    size_t m_op = measurementOp(2);
    for (uint32_t slot = 0; slot < zs.size(); slot++) {
        uint32_t anc = layout_->plaquettes()[zs[slot]].ancilla;
        auto symptoms = xSymptoms(m_op - 1, anc);
        std::set<uint32_t> expect{detector(slot, 2), detector(slot, 3)};
        EXPECT_EQ(symptoms, expect) << "Z slot " << slot;
    }
}

TEST_F(PhysicsTest, XAncillaErrorsInvisibleToZDetectors)
{
    // An X error on an X-type ancilla right before its measurement
    // flips only X-stabilizer outcomes, which a memory-Z circuit does
    // not monitor.
    size_t m_op = measurementOp(1);
    for (auto anc : layout_->ancillasOf(Basis::X)) {
        auto symptoms = xSymptoms(m_op - 1, anc);
        EXPECT_TRUE(symptoms.empty()) << "X ancilla " << anc;
    }
}

TEST_F(PhysicsTest, LogicalOperatorFlipsObservableUndetected)
{
    // X on every data qubit of column 0 right after initialization is
    // the logical X: no detector fires, the observable flips.
    std::vector<PauliFlip> flips;
    for (uint32_t r = 0; r < 3; r++)
        flips.push_back({layout_->dataQubit(r, 0), true, false});
    BitVec dets, obs;
    sim_->propagateInjection(1, flips, dets, obs);
    EXPECT_TRUE(dets.none());
    EXPECT_TRUE(obs.get(0));
}

TEST_F(PhysicsTest, SingleDataErrorNeverFlipsObservableAlone)
{
    // Any single X data error mid-circuit must be detected (otherwise
    // the code has distance 1).
    for (uint32_t q = 0; q < layout_->numDataQubits(); q++) {
        BitVec dets, obs;
        sim_->propagateInjection(1, {{q, true, false}}, dets, obs);
        if (obs.get(0))
            EXPECT_FALSE(dets.none()) << "qubit " << q;
    }
}

TEST(PhysicsGraph, EdgeCountsScaleWithVolume)
{
    // The decoding graph's edge count grows ~ linearly in the
    // space-time volume d^3.
    auto edges_at = [](uint32_t d) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = 1e-3;
        ExperimentContext ctx(cfg);
        return ctx.graph().edges().size();
    };
    size_t e3 = edges_at(3), e5 = edges_at(5);
    double ratio = static_cast<double>(e5) / static_cast<double>(e3);
    double volume_ratio = (5.0 * 5 * 5) / (3.0 * 3 * 3);
    EXPECT_GT(ratio, 0.5 * volume_ratio);
    EXPECT_LT(ratio, 2.0 * volume_ratio);
}

TEST(PhysicsGraph, BoundaryEdgesOnSpatialBoundaryOnly)
{
    // Boundary edges correspond to single-detector mechanisms, which
    // arise from errors adjacent to the lattice's open boundaries;
    // every round must contribute some, and interior detectors of the
    // middle rounds must not all have them.
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    const auto &graph = ctx.graph();
    size_t with_boundary = 0;
    for (uint32_t v = 0; v < graph.numNodes(); v++) {
        if (graph.boundaryEdge(v) >= 0)
            with_boundary++;
    }
    EXPECT_GT(with_boundary, 0u);
    EXPECT_LT(with_boundary, graph.numNodes());
}

TEST(PhysicsGraph, HookErrorsCreateDiagonalEdges)
{
    // With the standard schedule, depolarizing noise on the X-ancilla
    // CXs creates two-data-qubit X hooks: the decoding graph must
    // contain edges joining detectors of *different* plaquettes in the
    // same round (space-space edges beyond nearest-neighbor time
    // pairs).
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    const auto &info = ctx.circuit().detectorInfo();
    size_t same_round_pairs = 0;
    for (const auto &e : ctx.graph().edges()) {
        if (e.v == kBoundaryNode)
            continue;
        if (info[e.u].round == info[e.v].round)
            same_round_pairs++;
    }
    EXPECT_GT(same_round_pairs, 0u);
}

} // namespace
} // namespace astrea
