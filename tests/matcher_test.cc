/**
 * @file
 * Tests for the exhaustive enumerator and the bitmask DP matcher.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "common/weight.hh"
#include "matching/blossom.hh"
#include "matching/dp_matcher.hh"
#include "matching/enumerator.hh"

namespace astrea
{
namespace
{

TEST(Enumerator, CountsMatchDoubleFactorial)
{
    // Paper Eq. 2: w! / (2^(w/2) (w/2)!).
    EXPECT_EQ(perfectMatchingCount(0), 1u);
    EXPECT_EQ(perfectMatchingCount(2), 1u);
    EXPECT_EQ(perfectMatchingCount(4), 3u);
    EXPECT_EQ(perfectMatchingCount(6), 15u);
    EXPECT_EQ(perfectMatchingCount(8), 105u);
    EXPECT_EQ(perfectMatchingCount(10), 945u);
    EXPECT_EQ(perfectMatchingCount(20), 654729075u);  // ~6.5e8, Sec 5.7.
}

class EnumeratorTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EnumeratorTest, VisitsEveryMatchingExactlyOnce)
{
    const int m = GetParam();
    std::set<PairList> seen;
    forEachPerfectMatching(m, [&](const PairList &pl) {
        // Well-formed: each node exactly once, pairs ordered.
        std::set<int> used;
        for (auto [i, j] : pl) {
            EXPECT_LT(i, j);
            EXPECT_TRUE(used.insert(i).second);
            EXPECT_TRUE(used.insert(j).second);
        }
        EXPECT_EQ(used.size(), static_cast<size_t>(m));
        EXPECT_TRUE(seen.insert(pl).second) << "duplicate matching";
    });
    EXPECT_EQ(seen.size(), perfectMatchingCount(m));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnumeratorTest,
                         ::testing::Values(0, 2, 4, 6, 8, 10));

TEST(Enumerator, AllPerfectMatchingsMaterializes)
{
    auto all = allPerfectMatchings(6);
    EXPECT_EQ(all.size(), 15u);
}

TEST(Enumerator, ExhaustiveMinFindsOptimum)
{
    // Weights chosen so the best matching is (0,3), (1,2).
    auto w = [](int i, int j) -> double {
        if ((i == 0 && j == 3) || (i == 1 && j == 2))
            return 1.0;
        return 10.0;
    };
    PairList best;
    double total = exhaustiveMinWeightMatching(4, w, best);
    EXPECT_DOUBLE_EQ(total, 2.0);
    std::set<PairList> expect{{{0, 3}, {1, 2}}, {{1, 2}, {0, 3}}};
    std::set<std::pair<int, int>> got(best.begin(), best.end());
    EXPECT_TRUE(got.count({0, 3}));
    EXPECT_TRUE(got.count({1, 2}));
}

TEST(DpMatcher, EmptyInput)
{
    auto sol = dpMatchWithBoundary(
        0, [](int, int) { return 0.0; }, [](int) { return 0.0; });
    EXPECT_DOUBLE_EQ(sol.totalWeight, 0.0);
    EXPECT_TRUE(sol.pairs.empty());
}

TEST(DpMatcher, SingleDefectGoesToBoundary)
{
    auto sol = dpMatchWithBoundary(
        1, [](int, int) { return 0.0; }, [](int) { return 3.5; });
    EXPECT_DOUBLE_EQ(sol.totalWeight, 3.5);
    ASSERT_EQ(sol.pairs.size(), 1u);
    EXPECT_EQ(sol.pairs[0], (std::pair<int, int>{0, -1}));
}

TEST(DpMatcher, PairBeatsTwoBoundaries)
{
    auto sol = dpMatchWithBoundary(
        2, [](int, int) { return 1.0; }, [](int) { return 2.0; });
    EXPECT_DOUBLE_EQ(sol.totalWeight, 1.0);
    ASSERT_EQ(sol.pairs.size(), 1u);
    EXPECT_EQ(sol.pairs[0], (std::pair<int, int>{0, 1}));
}

TEST(DpMatcher, TwoBoundariesBeatExpensivePair)
{
    auto sol = dpMatchWithBoundary(
        2, [](int, int) { return 10.0; }, [](int) { return 2.0; });
    EXPECT_DOUBLE_EQ(sol.totalWeight, 4.0);
    EXPECT_EQ(sol.pairs.size(), 2u);
}

TEST(DpMatcher, OddCountAlwaysUsesBoundaryOnce)
{
    Rng rng(5);
    for (int trial = 0; trial < 30; trial++) {
        const int n = 5;
        std::vector<std::vector<double>> w(n, std::vector<double>(n));
        std::vector<double> wb(n);
        for (int i = 0; i < n; i++) {
            wb[i] = 1.0 + static_cast<double>(rng.uniformInt(20));
            for (int j = i + 1; j < n; j++)
                w[i][j] = w[j][i] =
                    1.0 + static_cast<double>(rng.uniformInt(20));
        }
        auto sol = dpMatchWithBoundary(
            n, [&](int i, int j) { return w[i][j]; },
            [&](int i) { return wb[i]; });
        int boundary_matches = 0;
        std::set<int> covered;
        for (auto [i, j] : sol.pairs) {
            covered.insert(i);
            if (j == -1)
                boundary_matches++;
            else
                covered.insert(j);
        }
        EXPECT_EQ(covered.size(), static_cast<size_t>(n));
        EXPECT_EQ(boundary_matches % 2, 1);
    }
}

TEST(DpMatcher, ReconstructionWeightIsConsistent)
{
    Rng rng(17);
    for (int trial = 0; trial < 50; trial++) {
        const int n = 2 + static_cast<int>(rng.uniformInt(9));
        std::vector<std::vector<double>> w(n, std::vector<double>(n));
        std::vector<double> wb(n);
        for (int i = 0; i < n; i++) {
            wb[i] = static_cast<double>(rng.uniformInt(30));
            for (int j = i + 1; j < n; j++)
                w[i][j] = w[j][i] =
                    static_cast<double>(rng.uniformInt(30));
        }
        auto sol = dpMatchWithBoundary(
            n, [&](int i, int j) { return w[i][j]; },
            [&](int i) { return wb[i]; });
        double recomputed = 0.0;
        for (auto [i, j] : sol.pairs)
            recomputed += (j == -1) ? wb[i] : w[std::min(i, j)]
                                               [std::max(i, j)];
        EXPECT_DOUBLE_EQ(recomputed, sol.totalWeight);
    }
}

TEST(DpMatcher, MatchesExhaustiveWithVirtualBoundary)
{
    // For even n, DP-with-boundary must equal exhaustive matching over
    // effective weights min(w_ij, wb_i + wb_j).
    Rng rng(23);
    for (int trial = 0; trial < 40; trial++) {
        const int n = 2 * (1 + rng.uniformInt(4));  // 2..8, even.
        std::vector<std::vector<double>> w(n, std::vector<double>(n));
        std::vector<double> wb(n);
        for (int i = 0; i < n; i++) {
            wb[i] = 1.0 + static_cast<double>(rng.uniformInt(25));
            for (int j = i + 1; j < n; j++)
                w[i][j] = w[j][i] =
                    1.0 + static_cast<double>(rng.uniformInt(25));
        }
        auto dp = dpMatchWithBoundary(
            n, [&](int i, int j) { return w[i][j]; },
            [&](int i) { return wb[i]; });
        PairList best;
        double ex = exhaustiveMinWeightMatching(
            n,
            [&](int i, int j) {
                return std::min(w[std::min(i, j)][std::max(i, j)],
                                wb[i] + wb[j]);
            },
            best);
        EXPECT_DOUBLE_EQ(dp.totalWeight, ex) << "trial " << trial;
    }
}

namespace
{

/**
 * Random quantized LWT tile: byte weights in 1..48 (1/8-decade LSB),
 * exactly the domain the hardware enumerator compares in. Returned as
 * decade doubles qw / kWeightScale, which are exactly representable.
 */
struct QuantizedTile
{
    std::vector<std::vector<double>> w;
    std::vector<double> wb;
    std::vector<std::vector<int64_t>> qw;
    std::vector<int64_t> qwb;
};

QuantizedTile
randomTile(Rng &rng, int m)
{
    QuantizedTile t;
    t.w.assign(m, std::vector<double>(m, 0.0));
    t.qw.assign(m, std::vector<int64_t>(m, 0));
    t.wb.resize(m);
    t.qwb.resize(m);
    for (int i = 0; i < m; i++) {
        t.qwb[i] = 1 + static_cast<int64_t>(rng.uniformInt(48));
        t.wb[i] = static_cast<double>(t.qwb[i]) / kWeightScale;
        for (int j = i + 1; j < m; j++) {
            t.qw[i][j] = t.qw[j][i] =
                1 + static_cast<int64_t>(rng.uniformInt(48));
            t.w[i][j] = t.w[j][i] =
                static_cast<double>(t.qw[i][j]) / kWeightScale;
        }
    }
    return t;
}

/** Blossom MWPM with per-defect boundary copies, weight in decades. */
double
blossomWeightWithBoundary(const QuantizedTile &t, int m)
{
    constexpr int64_t kForbidden = 1ll << 40;
    auto weight = [&](int i, int j) -> int64_t {
        bool i_real = i < m, j_real = j < m;
        if (i_real && j_real)
            return t.qw[i][j];
        if (!i_real && !j_real)
            return 0;
        int real = i_real ? i : j;
        int copy = (i_real ? j : i) - m;
        return copy == real ? t.qwb[real] : kForbidden;
    };
    auto mate = minWeightPerfectMatching(2 * m, weight);
    double total = 0.0;
    for (int i = 0; i < m; i++) {
        if (mate[i] < m) {
            if (i < mate[i])
                total += t.w[i][mate[i]];
        } else {
            EXPECT_EQ(mate[i] - m, i)
                << "defect matched to a foreign boundary copy";
            total += t.wb[i];
        }
    }
    return total;
}

} // namespace

TEST(MatcherHierarchy, DpBlossomAndEnumeratorAgreeOnQuantizedTiles)
{
    // The oracle hierarchy the accuracy auditor relies on: on random
    // quantized LWT tiles, for every even m <= 10,
    //
    //   exact-DP weight <= blossom weight <= Astrea weight,
    //
    // where the Astrea weight is the exhaustive enumerator's optimum
    // over effective pair weights min(w_ij, wb_i + wb_j) — the matching
    // the hardware computes. All three solve the same relaxation here,
    // so the inequalities collapse to equalities; asserting <= in both
    // directions makes a regression in any one of them visible.
    Rng rng(2023);
    for (int m = 2; m <= 10; m += 2) {
        for (int trial = 0; trial < 20; trial++) {
            QuantizedTile t = randomTile(rng, m);

            auto dp = dpMatchWithBoundary(
                m, [&](int i, int j) { return t.w[i][j]; },
                [&](int i) { return t.wb[i]; });
            double blossom = blossomWeightWithBoundary(t, m);
            PairList best;
            double astrea = exhaustiveMinWeightMatching(
                m,
                [&](int i, int j) {
                    return std::min(
                        t.w[std::min(i, j)][std::max(i, j)],
                        t.wb[i] + t.wb[j]);
                },
                best);

            // Quantized decade sums are multiples of 1/8 and exactly
            // representable, so the comparisons are exact.
            EXPECT_LE(dp.totalWeight, blossom)
                << "m=" << m << " trial=" << trial;
            EXPECT_LE(blossom, astrea)
                << "m=" << m << " trial=" << trial;
            // DP agrees with the legacy enumerator bit-for-bit.
            EXPECT_EQ(dp.totalWeight, astrea)
                << "m=" << m << " trial=" << trial;
        }
    }
}

TEST(DpMatcher, RejectsTooManyDefects)
{
    EXPECT_DEATH(dpMatchWithBoundary(
                     21, [](int, int) { return 1.0; },
                     [](int) { return 1.0; }),
                 "20");
}

} // namespace
} // namespace astrea
