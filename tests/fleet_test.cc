/**
 * @file
 * Tests for the sharded decode fleet: the lock-free MPSC ring, the
 * binary ingest protocol (including truncation and bit-flip fuzz), the
 * coalescing admission policy under an injected clock, priority-ramp
 * load shedding, and end-to-end TCP ingest parity against a direct
 * decodeBatch on the same syndromes.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bitvec.hh"
#include "common/mpsc_ring.hh"
#include "common/rng.hh"
#include "decoders/decoder.hh"
#include "decoders/registry.hh"
#include "harness/fleet.hh"
#include "harness/memory_experiment.hh"
#include "net/fleet_client.hh"
#include "net/fleet_protocol.hh"
#include "net/fleet_server.hh"

namespace astrea
{
namespace
{

// ---------------------------------------------------------------- ring

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo)
{
    MpscRing<int> r(100);
    EXPECT_EQ(r.capacity(), 128u);
    MpscRing<int> r2(64);
    EXPECT_EQ(r2.capacity(), 64u);
    MpscRing<int> r3(1);
    EXPECT_GE(r3.capacity(), 1u);
}

TEST(MpscRing, FifoOrderSurvivesWraparound)
{
    MpscRing<int> r(8);
    int next_out = 0;
    int next_in = 0;
    // Push/pop in lockstep 10x the capacity so head and tail wrap
    // several times; order must hold across every wrap.
    for (int round = 0; round < 20; round++) {
        for (int i = 0; i < 5; i++)
            ASSERT_TRUE(r.tryPush(next_in++));
        for (int i = 0; i < 5; i++) {
            int v = -1;
            ASSERT_TRUE(r.tryPop(v));
            EXPECT_EQ(v, next_out++);
        }
    }
    int v;
    EXPECT_FALSE(r.tryPop(v));
}

TEST(MpscRing, BoundedCapacityRejectsWhenFull)
{
    MpscRing<int> r(4);
    for (int i = 0; i < 4; i++)
        ASSERT_TRUE(r.tryPush(i));
    EXPECT_FALSE(r.tryPush(99));
    EXPECT_EQ(r.sizeApprox(), 4u);
    int v = -1;
    ASSERT_TRUE(r.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(r.tryPush(99));
    EXPECT_FALSE(r.tryPush(100));
}

TEST(MpscRing, SpscHammerPreservesOrderAndCount)
{
    MpscRing<uint64_t> ring(64);
    constexpr uint64_t kItems = 200000;
    std::thread producer([&] {
        for (uint64_t i = 0; i < kItems; i++) {
            while (!ring.tryPush(i))
                std::this_thread::yield();
        }
    });
    uint64_t expect = 0;
    while (expect < kItems) {
        uint64_t v;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            expect++;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    uint64_t v;
    EXPECT_FALSE(ring.tryPop(v));
}

TEST(MpscRing, MpscHammerLosesNothingAndKeepsPerProducerOrder)
{
    MpscRing<uint64_t> ring(128);
    constexpr unsigned kProducers = 4;
    constexpr uint64_t kPerProducer = 50000;
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; p++) {
        producers.emplace_back([&ring, p] {
            for (uint64_t i = 0; i < kPerProducer; i++) {
                const uint64_t tagged = (uint64_t{p} << 32) | i;
                while (!ring.tryPush(tagged))
                    std::this_thread::yield();
            }
        });
    }
    // Single consumer: per-producer sequence numbers must arrive in
    // order even though producers interleave arbitrarily.
    uint64_t next_seq[kProducers] = {0, 0, 0, 0};
    uint64_t popped = 0;
    while (popped < kProducers * kPerProducer) {
        uint64_t v;
        if (!ring.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        const unsigned p = static_cast<unsigned>(v >> 32);
        const uint64_t seq = v & 0xFFFFFFFFu;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
        next_seq[p]++;
        popped++;
    }
    for (auto &t : producers)
        t.join();
    for (unsigned p = 0; p < kProducers; p++)
        EXPECT_EQ(next_seq[p], kPerProducer);
}

// ------------------------------------------------------------ protocol

TEST(FleetProtocol, HeaderRoundTrips)
{
    std::vector<uint8_t> buf;
    net::appendFleetHeader(buf, net::FleetFrameType::Syndrome,
                           0xDEADBEEFu, 42, 17);
    ASSERT_EQ(buf.size(), net::kFleetHeaderBytes);
    net::FleetFrameHeader h;
    EXPECT_EQ(net::parseFleetHeader(buf.data(), buf.size(), h),
              net::FleetParse::Ok);
    EXPECT_EQ(h.type, net::FleetFrameType::Syndrome);
    EXPECT_EQ(h.streamId, 0xDEADBEEFu);
    EXPECT_EQ(h.seq, 42u);
    EXPECT_EQ(h.payloadLen, 17u);
}

TEST(FleetProtocol, DribbledBytesYieldFramesInOrder)
{
    // Hello + Syndrome + Verdict concatenated, delivered a byte at a
    // time: the buffer must never yield a frame early, and must yield
    // all three in order once their bytes are in.
    std::vector<uint8_t> wire;
    net::appendFleetHello(wire, 360);
    const uint8_t codec[] = {0x00, 0xAB};  // Opaque payload bytes.
    net::appendFleetSyndrome(wire, 7, 3, 5, codec, sizeof(codec));
    net::appendFleetVerdict(wire, 7, 3, 0x1234, net::kVerdictGaveUp);

    net::FleetFrameBuffer fb;
    std::vector<net::FleetFrameHeader> got;
    for (uint8_t byte : wire) {
        fb.append(&byte, 1);
        net::FleetFrameHeader h;
        const uint8_t *payload = nullptr;
        net::FleetParse st = fb.next(h, payload);
        if (st == net::FleetParse::Ok) {
            got.push_back(h);
            if (h.type == net::FleetFrameType::Syndrome) {
                ASSERT_EQ(h.payloadLen, 3u);  // priority + 2 codec.
                EXPECT_EQ(payload[0], 5u);
                EXPECT_EQ(payload[1], 0x00u);
                EXPECT_EQ(payload[2], 0xABu);
            }
        } else {
            ASSERT_EQ(st, net::FleetParse::NeedMore);
        }
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, net::FleetFrameType::Hello);
    EXPECT_EQ(got[1].type, net::FleetFrameType::Syndrome);
    EXPECT_EQ(got[1].streamId, 7u);
    EXPECT_EQ(got[1].seq, 3u);
    EXPECT_EQ(got[2].type, net::FleetFrameType::Verdict);
    EXPECT_EQ(fb.pending(), 0u);
}

TEST(FleetProtocol, MalformedPrefixesAreRejectedEagerly)
{
    net::FleetFrameHeader h;
    // Bad magic is detectable from the first two bytes.
    const uint8_t bad_magic[] = {0xFF, 0xFF};
    EXPECT_EQ(net::parseFleetHeader(bad_magic, 2, h),
              net::FleetParse::Malformed);
    // One byte is not enough to convict.
    EXPECT_EQ(net::parseFleetHeader(bad_magic, 1, h),
              net::FleetParse::NeedMore);

    std::vector<uint8_t> frame;
    net::appendFleetHello(frame, 16);
    // Bad version.
    std::vector<uint8_t> v = frame;
    v[2] = 99;
    EXPECT_EQ(net::parseFleetHeader(v.data(), v.size(), h),
              net::FleetParse::Malformed);
    // Bad type.
    std::vector<uint8_t> t = frame;
    t[3] = 7;
    EXPECT_EQ(net::parseFleetHeader(t.data(), t.size(), h),
              net::FleetParse::Malformed);
    // Oversized payload length.
    std::vector<uint8_t> p = frame;
    p[12] = 0xFF;
    p[13] = 0xFF;
    EXPECT_EQ(net::parseFleetHeader(p.data(), p.size(), h),
              net::FleetParse::Malformed);
}

TEST(FleetProtocol, TruncatedFrameNeverYields)
{
    std::vector<uint8_t> wire;
    const uint8_t codec[] = {0x01, 0x02, 0x03, 0x04};
    net::appendFleetSyndrome(wire, 1, 1, 0, codec, sizeof(codec));
    // Every proper prefix must report NeedMore, never Ok/Malformed.
    for (size_t cut = 0; cut < wire.size(); cut++) {
        net::FleetFrameBuffer fb;
        fb.append(wire.data(), cut);
        net::FleetFrameHeader h;
        const uint8_t *payload = nullptr;
        EXPECT_EQ(fb.next(h, payload), net::FleetParse::NeedMore)
            << "prefix of " << cut << " bytes";
    }
}

TEST(FleetProtocol, BitFlipFuzzNeverCrashesOrOverReads)
{
    std::vector<uint8_t> wire;
    const uint8_t codec[] = {0x01, 0x03, 0x00, 0x05, 0x0A};
    net::appendFleetSyndrome(wire, 9, 100, 3, codec, sizeof(codec));

    for (size_t bit = 0; bit < wire.size() * 8; bit++) {
        std::vector<uint8_t> mutated = wire;
        mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        net::FleetFrameBuffer fb;
        fb.append(mutated.data(), mutated.size());
        net::FleetFrameHeader h;
        const uint8_t *payload = nullptr;
        const net::FleetParse st = fb.next(h, payload);
        if (st == net::FleetParse::Ok) {
            // Payload must lie entirely within the mutated buffer.
            ASSERT_LE(h.payloadLen, net::kFleetMaxPayload);
            ASSERT_LE(static_cast<size_t>(h.payloadLen),
                      mutated.size() - net::kFleetHeaderBytes);
        }
    }
}

// --------------------------------------------------- coalescing / shed

std::shared_ptr<const ExperimentContext>
smallContext()
{
    ExperimentConfig ec;
    ec.distance = 3;
    ec.physicalErrorRate = 1e-3;
    return std::make_shared<const ExperimentContext>(ec);
}

FleetJob
jobWith(uint32_t stream, uint32_t seq, uint8_t priority,
        std::initializer_list<uint32_t> defects)
{
    FleetJob j;
    j.streamId = stream;
    j.seq = seq;
    j.priority = priority;
    j.hw = static_cast<uint16_t>(defects.size());
    size_t i = 0;
    for (uint32_t d : defects)
        j.defects[i++] = d;
    return j;
}

TEST(DecodeFleet, CoalescesUntilMaxBatchThenFlushes)
{
    FleetConfig fc;
    fc.shards = 1;
    fc.ringCapacity = 64;
    fc.maxBatch = 4;
    fc.maxDelayNs = uint64_t{1} << 60;  // Age never triggers.
    DecodeFleet fleet(fc, smallContext(), registryFactory("astrea"));

    uint64_t fake_now = 1000;
    fleet.setNowFunction([&fake_now] { return fake_now; });
    std::vector<FleetVerdict> verdicts;
    fleet.setVerdictSink(
        [&](const FleetVerdict &v) { verdicts.push_back(v); });

    for (uint32_t i = 0; i < 3; i++) {
        FleetJob j = jobWith(0, i, 0, {0, 1});
        ASSERT_EQ(fleet.submit(j), FleetSubmit::Enqueued);
    }
    // Three pending, below maxBatch, no age: nothing decodes.
    EXPECT_EQ(fleet.pumpShard(0, fake_now), 0u);
    EXPECT_TRUE(verdicts.empty());

    FleetJob j = jobWith(0, 3, 0, {2, 3});
    ASSERT_EQ(fleet.submit(j), FleetSubmit::Enqueued);
    EXPECT_EQ(fleet.pumpShard(0, fake_now), 4u);
    ASSERT_EQ(verdicts.size(), 4u);
    EXPECT_EQ(fleet.batchesTotal(), 1u);
    EXPECT_EQ(fleet.decodedTotal(), 4u);
    for (uint32_t i = 0; i < 4; i++) {
        EXPECT_EQ(verdicts[i].seq, i);
        EXPECT_FALSE(verdicts[i].shed);
    }
}

TEST(DecodeFleet, FlushesWhenOldestPendingShotAges)
{
    FleetConfig fc;
    fc.shards = 1;
    fc.ringCapacity = 64;
    fc.maxBatch = 100;
    fc.maxDelayNs = 1000;
    DecodeFleet fleet(fc, smallContext(), registryFactory("astrea"));

    uint64_t fake_now = 5000;
    fleet.setNowFunction([&fake_now] { return fake_now; });
    std::vector<FleetVerdict> verdicts;
    fleet.setVerdictSink(
        [&](const FleetVerdict &v) { verdicts.push_back(v); });

    FleetJob a = jobWith(0, 0, 0, {0});
    ASSERT_EQ(fleet.submit(a), FleetSubmit::Enqueued);
    fake_now = 5400;
    FleetJob b = jobWith(0, 1, 0, {1});
    ASSERT_EQ(fleet.submit(b), FleetSubmit::Enqueued);

    // Oldest is 400ns old at 5400 and 999ns old at 5999: no flush.
    EXPECT_EQ(fleet.pumpShard(0, 5400), 0u);
    EXPECT_EQ(fleet.pumpShard(0, 5999), 0u);
    EXPECT_TRUE(verdicts.empty());
    // At exactly maxDelay the whole pending block flushes.
    EXPECT_EQ(fleet.pumpShard(0, 6000), 2u);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0].latencyNs, 1000u);
    EXPECT_EQ(verdicts[1].latencyNs, 600u);
}

TEST(DecodeFleet, RequiredPriorityRampIsMonotoneAndSaturates)
{
    FleetConfig fc;
    fc.shards = 1;
    fc.ringCapacity = 16;
    fc.shedLowWatermark = 0.25;   // Ramp starts at depth 4.
    fc.shedHighWatermark = 0.75;  // Top priority from depth 12.
    fc.maxPriority = 7;
    DecodeFleet fleet(fc, smallContext(), registryFactory("astrea"));

    EXPECT_EQ(fleet.requiredPriorityAtDepth(0), 0u);
    EXPECT_EQ(fleet.requiredPriorityAtDepth(3), 0u);
    EXPECT_EQ(fleet.requiredPriorityAtDepth(12), 7u);
    EXPECT_EQ(fleet.requiredPriorityAtDepth(16), 7u);
    uint8_t prev = 0;
    for (size_t depth = 0; depth <= 16; depth++) {
        const uint8_t req = fleet.requiredPriorityAtDepth(depth);
        EXPECT_GE(req, prev) << "ramp regressed at depth " << depth;
        EXPECT_LE(req, 7u);
        prev = req;
    }
}

TEST(DecodeFleet, ShedsLowestPriorityFirstThenRejectsOnFullRing)
{
    FleetConfig fc;
    fc.shards = 1;
    fc.ringCapacity = 8;
    fc.maxBatch = 64;
    fc.shedLowWatermark = 0.25;   // Depth 2.
    fc.shedHighWatermark = 0.75;  // Depth 6.
    fc.maxPriority = 7;
    DecodeFleet fleet(fc, smallContext(), registryFactory("astrea"));
    fleet.setNowFunction([] { return uint64_t{1}; });

    std::vector<FleetVerdict> shed_verdicts;
    fleet.setVerdictSink([&](const FleetVerdict &v) {
        if (v.shed)
            shed_verdicts.push_back(v);
    });

    // Queue never drains (no pump): depth grows with each accept.
    // Priority 0 is admitted while depth < ramp threshold, then shed.
    uint32_t seq = 0;
    size_t admitted_p0 = 0;
    for (int i = 0; i < 4; i++) {
        FleetJob j = jobWith(1, seq++, 0, {0});
        if (fleet.submit(j) == FleetSubmit::Enqueued)
            admitted_p0++;
    }
    EXPECT_EQ(admitted_p0, 3u);  // Depths 0,1,2 admit; 3 sheds.
    ASSERT_EQ(shed_verdicts.size(), 1u);
    EXPECT_TRUE(shed_verdicts[0].shed);
    EXPECT_EQ(fleet.shedTotal(), 1u);
    EXPECT_EQ(fleet.ringFullTotal(), 0u);

    // Top priority sails past the ramp until the ring itself fills.
    size_t admitted_p7 = 0;
    FleetSubmit last = FleetSubmit::Enqueued;
    for (int i = 0; i < 6; i++) {
        FleetJob j = jobWith(1, seq++, 7, {0});
        last = fleet.submit(j);
        if (last == FleetSubmit::Enqueued)
            admitted_p7++;
    }
    EXPECT_EQ(admitted_p7, 5u);  // 3 + 5 = capacity 8.
    EXPECT_EQ(last, FleetSubmit::RingFull);
    EXPECT_EQ(fleet.ringFullTotal(), 1u);
    EXPECT_EQ(fleet.queueDepth(0), 8u);

    // Draining restores admission for everyone.
    EXPECT_EQ(fleet.flushShard(0, 2), 8u);
    FleetJob j = jobWith(1, seq++, 0, {0});
    EXPECT_EQ(fleet.submit(j), FleetSubmit::Enqueued);
}

TEST(DecodeFleet, ShardMappingIsStableAndCoversAllShards)
{
    FleetConfig fc;
    fc.shards = 4;
    DecodeFleet fleet(fc, smallContext(), registryFactory("astrea"));
    std::vector<bool> hit(4, false);
    for (uint32_t id = 0; id < 256; id++) {
        const unsigned s = fleet.shardFor(id);
        ASSERT_LT(s, 4u);
        EXPECT_EQ(s, fleet.shardFor(id));  // Deterministic.
        hit[s] = true;
    }
    for (unsigned s = 0; s < 4; s++)
        EXPECT_TRUE(hit[s]) << "shard " << s << " never selected";
}

// ------------------------------------------------- TCP ingest parity

TEST(FleetIngest, TcpRoundTripMatchesDirectDecodeBatch)
{
    ExperimentConfig ec;
    ec.distance = 5;
    ec.physicalErrorRate = 1e-3;
    auto ctx = std::make_shared<const ExperimentContext>(ec);

    FleetConfig fc;
    fc.shards = 2;
    fc.ringCapacity = 512;
    fc.maxBatch = 16;
    fc.maxDelayNs = 50 * 1000;
    DecodeFleet fleet(fc, ctx, registryFactory("astrea"));
    net::FleetServer server(fleet);
    fleet.setVerdictSink(
        [&server](const FleetVerdict &v) { server.deliver(v); });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;
    fleet.start();

    net::FleetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    ASSERT_EQ(client.numDetectorBits(),
              static_cast<uint32_t>(ctx->circuit().numDetectors()));

    // Sample real syndromes in Astrea's supported range.
    Rng rng(77);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> syndromes;
    size_t guard = 0;
    while (syndromes.size() < 96 && ++guard < 2000000) {
        ctx->sampler().sample(rng, dets, obs);
        const size_t hw = dets.popcount();
        if (hw >= 1 && hw <= 10)
            syndromes.push_back(dets.onesIndices());
    }
    ASSERT_GE(syndromes.size(), 64u);

    // Top priority everywhere: this test measures parity, not
    // shedding, and the load is far below the watermarks anyway.
    for (uint32_t i = 0; i < syndromes.size(); i++)
        ASSERT_TRUE(client.sendShot(i % 8, i, fc.maxPriority,
                                    syndromes[i]));
    ASSERT_TRUE(client.flush());

    std::vector<net::FleetClientVerdict> got(syndromes.size());
    for (size_t i = 0; i < syndromes.size(); i++) {
        net::FleetClientVerdict v;
        ASSERT_TRUE(client.readVerdict(v)) << "verdict " << i;
        ASSERT_LT(v.seq, got.size());
        EXPECT_FALSE(v.shed);
        EXPECT_FALSE(v.error);
        got[v.seq] = v;
    }

    client.close();
    fleet.stop();
    server.stop();

    // The same syndromes through the same factory, directly.
    auto dec = registryFactory("astrea")(*ctx);
    SyndromeBatch batch;
    for (const auto &s : syndromes)
        batch.add(s);
    std::vector<DecodeResult> direct;
    DecodeScratch scratch;
    dec->decodeBatch(batch, direct, scratch);
    ASSERT_EQ(direct.size(), syndromes.size());

    for (size_t i = 0; i < syndromes.size(); i++) {
        EXPECT_EQ(got[i].obsMask, direct[i].obsMask) << "shot " << i;
        EXPECT_EQ(got[i].gaveUp, direct[i].gaveUp) << "shot " << i;
    }
    EXPECT_EQ(fleet.decodedTotal(), syndromes.size());
    EXPECT_EQ(fleet.shedTotal(), 0u);
    EXPECT_EQ(fleet.malformedTotal(), 0u);
}

TEST(FleetIngest, MalformedFrameClosesConnection)
{
    auto ctx = smallContext();
    FleetConfig fc;
    fc.shards = 1;
    DecodeFleet fleet(fc, ctx, registryFactory("astrea"));
    net::FleetServer server(fleet);
    fleet.setVerdictSink(
        [&server](const FleetVerdict &v) { server.deliver(v); });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    // Drain the Hello frame (14-byte header + 4-byte payload).
    uint8_t hello[18];
    size_t have = 0;
    while (have < sizeof(hello)) {
        ssize_t n = ::recv(fd, hello + have, sizeof(hello) - have, 0);
        ASSERT_GT(n, 0);
        have += static_cast<size_t>(n);
    }

    // Garbage: the server must close, not desynchronize or crash.
    uint8_t junk[32];
    std::memset(junk, 0xFF, sizeof(junk));
    ASSERT_EQ(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(junk)));

    uint8_t byte;
    ssize_t n = ::recv(fd, &byte, 1, 0);
    EXPECT_LE(n, 0) << "server kept talking after a malformed frame";
    ::close(fd);

    server.stop();
    EXPECT_GE(fleet.malformedTotal(), 1u);
    EXPECT_EQ(fleet.decodedTotal(), 0u);
}

} // namespace
} // namespace astrea
