/**
 * @file
 * Tests for the experiment harness: shot loops, Hamming-weight
 * histograms and their analytic model, latency histograms, the
 * semi-analytic estimator, and the sweep helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "astrea/resource_model.hh"
#include "harness/hw_histogram.hh"
#include "harness/latency_stats.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"
#include "harness/sweeps.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
d3Context()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 3;
        cfg.physicalErrorRate = 2e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

TEST(MemoryExperiment, ShotAccounting)
{
    ExperimentResult r = runMemoryExperiment(d3Context(),
                                             astreaFactory(), 5000, 1);
    EXPECT_EQ(r.logicalErrors.trials, 5000u);
    EXPECT_EQ(r.hammingWeights.total(), 5000u);
    EXPECT_EQ(r.latencyNs.count(), 5000u);
}

TEST(MemoryExperiment, DeterministicForFixedSeedAndThreads)
{
    auto a = runMemoryExperiment(d3Context(), mwpmFactory(), 2000, 7, 2);
    auto b = runMemoryExperiment(d3Context(), mwpmFactory(), 2000, 7, 2);
    EXPECT_EQ(a.logicalErrors.successes, b.logicalErrors.successes);
    EXPECT_EQ(a.hammingWeights.at(2), b.hammingWeights.at(2));
}

TEST(MemoryExperiment, ThreadCountDoesNotBiasLer)
{
    auto a = runMemoryExperiment(d3Context(), mwpmFactory(), 40000, 3, 1);
    auto b = runMemoryExperiment(d3Context(), mwpmFactory(), 40000, 3, 4);
    // Different shard RNGs, same distribution: LERs agree within noise.
    double rate_a = a.ler(), rate_b = b.ler();
    EXPECT_LT(std::abs(rate_a - rate_b),
              5 * std::sqrt(rate_a / 40000.0 + rate_b / 40000.0) +
                  1e-4);
}

TEST(MemoryExperiment, ResultMerge)
{
    ExperimentResult a, b;
    a.logicalErrors = {2, 100};
    b.logicalErrors = {3, 200};
    a.gaveUps = 1;
    b.gaveUps = 2;
    a.merge(b);
    EXPECT_EQ(a.logicalErrors.successes, 5u);
    EXPECT_EQ(a.logicalErrors.trials, 300u);
    EXPECT_EQ(a.gaveUps, 3u);
}

TEST(HwHistogram, MeasuredFrequenciesSumToOne)
{
    HwDistribution dist = measureHwDistribution(d3Context(), 20000, 5);
    EXPECT_EQ(dist.shots, 20000u);
    double total = 0.0;
    for (size_t h = 0; h <= dist.hist.maxKey(); h++)
        total += dist.frequency(h);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HwHistogram, AnalyticModelIsUpperBoundInTheTail)
{
    // Sec. 4.2: the binomial model upper-bounds the real tail
    // frequencies (not every fault flips two bits).
    const uint32_t d = 3;
    const double p = 2e-3;
    HwDistribution dist = measureHwDistribution(d3Context(), 200000, 9);
    for (uint32_t h = 4; h <= 10; h += 2) {
        double analytic = analyticHwTail(d, p, h);
        double measured = dist.hist.tailFrequency(h);
        EXPECT_GT(analytic, measured * 0.5) << "h=" << h;
    }
}

TEST(HwHistogram, AnalyticPmfProperties)
{
    // Odd weights are impossible in the pair-flip model; even weights
    // sum to one.
    EXPECT_DOUBLE_EQ(analyticHwProbability(5, 1e-3, 3), 0.0);
    double total = 0.0;
    for (uint32_t h = 0; h <= 144; h += 2)
        total += analyticHwProbability(5, 1e-3, h);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HwHistogram, RangeFrequency)
{
    HwDistribution dist = measureHwDistribution(d3Context(), 5000, 11);
    double all = dist.rangeFrequency(0, 64);
    EXPECT_NEAR(all, 1.0, 1e-9);
    EXPECT_LE(dist.rangeFrequency(1, 2), 1.0);
}

TEST(LatencyHistogram, BucketsAndFractions)
{
    LatencyHistogram h(100.0, 1000.0);
    h.add(50.0);
    h.add(150.0);
    h.add(2500.0);  // Overflow.
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.maxNs(), 2500.0);
    EXPECT_NEAR(h.fractionAbove(1000.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.bucketFraction(0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.bucketFraction(1), 1.0 / 3.0, 1e-12);
}

TEST(LatencyHistogram, EmptyHistogramPercentilesAreZero)
{
    LatencyHistogram h(100.0, 1000.0);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_DOUBLE_EQ(h.percentileNs(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.p999Ns(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(0.0), 0.0);
}

TEST(LatencyHistogram, AllSamplesInOverflowReportObservedMax)
{
    LatencyHistogram h(100.0, 1000.0);
    h.add(5000.0);
    h.add(7000.0);
    h.add(9000.0);
    EXPECT_EQ(h.overflowCount(), 3u);
    // Every rank lands in the overflow region: the percentile falls
    // back to the observed maximum rather than inventing a bucket.
    EXPECT_DOUBLE_EQ(h.percentileNs(50.0), 9000.0);
    EXPECT_DOUBLE_EQ(h.p99Ns(), 9000.0);
    EXPECT_DOUBLE_EQ(h.p999Ns(), 9000.0);
}

TEST(LatencyHistogram, P999TracksExtremeTail)
{
    LatencyHistogram h(50.0, 10000.0);
    for (int i = 0; i < 499; i++)
        h.add(100.0);
    h.add(5000.0);
    // p99 sits in the bulk; p99.9 must reach the lone tail sample.
    EXPECT_LT(h.p99Ns(), 200.0);
    EXPECT_DOUBLE_EQ(h.p999Ns(), 5000.0);
    EXPECT_EQ(h.overflowCount(), 0u);
}

TEST(LatencyHistogram, MeasureDistributionSkipsTrivialShots)
{
    LatencyHistogram h = measureLatencyDistribution(
        d3Context(), astreaFactory(), 20000, 13);
    EXPECT_GT(h.samples(), 0u);
    EXPECT_LT(h.samples(), 20000u);  // Zero-HW shots skipped.
    // Astrea's worst case at d=3 is 32 ns (Fig. 9).
    EXPECT_LE(h.maxNs(), 456.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(1000.0), 0.0);
}

TEST(SemiAnalytic, SingleFaultNeverFailsDistance3)
{
    // A distance-3 code corrects any single fault under exact MWPM.
    SemiAnalyticConfig cfg;
    cfg.maxFaults = 2;
    cfg.shotsPerK = 3000;
    cfg.seed = 17;
    SemiAnalyticResult r =
        estimateLerSemiAnalytic(d3Context(), mwpmFactory(), cfg);
    EXPECT_DOUBLE_EQ(r.failureProb[0], 0.0);
    EXPECT_DOUBLE_EQ(r.failureProb[1], 0.0);
    EXPECT_GT(r.failureProb[2], 0.0);  // Two faults can defeat d=3.
}

TEST(SemiAnalytic, OccurrenceProbabilitiesAreBinomial)
{
    SemiAnalyticConfig cfg;
    cfg.maxFaults = 3;
    cfg.shotsPerK = 100;
    SemiAnalyticResult r =
        estimateLerSemiAnalytic(d3Context(), mwpmFactory(), cfg);
    EXPECT_GT(r.faultSites, 0u);
    for (uint32_t k = 0; k <= 3; k++) {
        EXPECT_NEAR(r.occurrenceProb[k],
                    binomialPmf(r.faultSites, 2e-3, k), 1e-12);
    }
    EXPECT_GE(r.tailMass, 0.0);
    EXPECT_LT(r.tailMass, 0.1);
}

TEST(SemiAnalytic, LerConsistentWithMonteCarlo)
{
    // At d = 3 and an inflated p the LER is large enough for a direct
    // comparison between the two estimators.
    SemiAnalyticConfig cfg;
    cfg.maxFaults = 8;
    cfg.shotsPerK = 20000;
    cfg.seed = 19;
    SemiAnalyticResult sa =
        estimateLerSemiAnalytic(d3Context(), mwpmFactory(), cfg);
    ExperimentResult mc =
        runMemoryExperiment(d3Context(), mwpmFactory(), 200000, 23);
    EXPECT_GT(sa.ler, 0.0);
    EXPECT_LT(std::abs(std::log10(sa.ler) - std::log10(mc.ler())),
              0.35);
}

TEST(Sweeps, PhysicalErrorRateSweepShape)
{
    std::vector<NamedFactory> decoders{{"mwpm", mwpmFactory()}};
    auto points = sweepPhysicalErrorRate(3, Basis::Z, {1e-3, 8e-3},
                                         decoders, 30000, 29);
    ASSERT_EQ(points.size(), 2u);
    ASSERT_EQ(points[0].results.size(), 1u);
    // LER grows with p.
    EXPECT_LT(points[0].results[0].ler(), points[1].results[0].ler());
}

TEST(Sweeps, DistanceSweepSuppressesErrors)
{
    std::vector<NamedFactory> decoders{{"mwpm", mwpmFactory()}};
    auto points = sweepDistance({3, 5}, Basis::Z, 5e-3, decoders,
                                30000, 31);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[0].results[0].ler(),
              points[1].results[0].ler());
}

TEST(Sweeps, DecodeBudgetMapsToCycles)
{
    auto points = sweepDecodeBudget(d3Context(), {400.0, 1000.0},
                                    AstreaGConfig{}, 2000, 37);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].x, 400.0);
}

TEST(ResourceModel, SramScalesWithDistance)
{
    AstreaGConfig cfg;
    AstreaGSram s7 = astreaGSram(7, 16, cfg);
    AstreaGSram s9 = astreaGSram(9, 24, cfg);
    EXPECT_EQ(s7.gwtBytes, 36864u);   // 36 KB, Table 6.
    EXPECT_EQ(s9.gwtBytes, 160000u);  // ~156 KB, Table 6.
    EXPECT_GT(s9.totalBytes(), s7.totalBytes());
    EXPECT_EQ(s7.lwtBytes, 512u);     // Table 6 row.
}

TEST(ResourceModel, UtilizationWithinDevice)
{
    FpgaUtilization a = astreaUtilization(7);
    EXPECT_GT(a.lutPercent, 0.0);
    EXPECT_LT(a.lutPercent, 100.0);
    EXPECT_LT(a.bramPercent, 100.0);
    EXPECT_DOUBLE_EQ(a.maxFreqMHz, 250.0);

    FpgaUtilization g = astreaGUtilization(9, 24, AstreaGConfig{});
    EXPECT_GT(g.lutPercent, a.lutPercent);
    EXPECT_LT(g.lutPercent, 100.0);
}

} // namespace
} // namespace astrea
