/**
 * @file
 * Tests for the telemetry subsystem: sharded metrics merging under
 * concurrency, scoped-timer span nesting, percentile math, the JSON
 * writer, JSONL trace round-trips and leveled logging — plus the
 * give-up Hamming-weight histogram the harness exports.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "harness/latency_stats.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/scoped_timer.hh"
#include "telemetry/telemetry.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

/**
 * Minimal recursive-descent JSON parser for round-trip checks. Parses
 * into a tagged tree; good enough to validate exporter output without
 * external dependencies.
 */
struct LocalJsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<LocalJsonValue> arr;
    std::map<std::string, LocalJsonValue> obj;

    bool has(const std::string &k) const { return obj.count(k) != 0; }
    const LocalJsonValue &operator[](const std::string &k) const
    {
        static LocalJsonValue missing;
        auto it = obj.find(k);
        return it == obj.end() ? missing : it->second;
    }
};

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string &text) : s_(text) {}

    bool
    parse(LocalJsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() && std::isspace(
                   static_cast<unsigned char>(s_[pos_]))) {
            pos_++;
        }
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        return false;
                    // Escaped control characters only show up for
                    // exotic input; keep the escape verbatim.
                    out += "\\u" + s_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            return false;
        pos_++;  // Closing quote.
        return true;
    }

    bool
    parseValue(LocalJsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{') {
            pos_++;
            out.kind = LocalJsonValue::Object;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                pos_++;
                return true;
            }
            while (true) {
                skipWs();
                std::string k;
                if (!parseString(k))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                LocalJsonValue v;
                if (!parseValue(v))
                    return false;
                out.obj[k] = v;
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (s_[pos_] == '}') {
                    pos_++;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            pos_++;
            out.kind = LocalJsonValue::Array;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                pos_++;
                return true;
            }
            while (true) {
                LocalJsonValue v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(v);
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (s_[pos_] == ']') {
                    pos_++;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.kind = LocalJsonValue::String;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = LocalJsonValue::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = LocalJsonValue::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = LocalJsonValue::Null;
            return literal("null");
        }
        // Number.
        size_t start = pos_;
        if (s_[pos_] == '-')
            pos_++;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            pos_++;
        }
        if (pos_ == start)
            return false;
        out.kind = LocalJsonValue::Number;
        out.num = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

bool
parseJson(const std::string &text, LocalJsonValue &out)
{
    MiniJsonParser p(text);
    return p.parse(out);
}

/** RAII: enable telemetry for a test and restore the off state after. */
struct TelemetryOn
{
    TelemetryOn() { setEnabled(true); }
    ~TelemetryOn() { setEnabled(false); }
};

} // namespace

TEST(JsonWriterTest, StructureAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.kv("name", "a\"b\\c\nd");
    w.kv("count", uint64_t{42});
    w.kv("ratio", 0.25);
    w.kv("neg", int64_t{-7});
    w.kv("flag", true);
    w.key("nan").value(std::nan(""));
    w.key("list").beginArray();
    w.value(uint64_t{1}).value(uint64_t{2}).value(uint64_t{3});
    w.endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();

    ASSERT_TRUE(w.balanced());
    LocalJsonValue doc;
    ASSERT_TRUE(parseJson(w.str(), doc)) << w.str();
    EXPECT_EQ(doc["name"].str, "a\"b\\c\nd");
    EXPECT_EQ(doc["count"].num, 42.0);
    EXPECT_EQ(doc["ratio"].num, 0.25);
    EXPECT_EQ(doc["neg"].num, -7.0);
    EXPECT_TRUE(doc["flag"].b);
    EXPECT_EQ(doc["nan"].kind, LocalJsonValue::Null);
    ASSERT_EQ(doc["list"].arr.size(), 3u);
    EXPECT_EQ(doc["list"].arr[1].num, 2.0);
    EXPECT_EQ(doc["empty"].kind, LocalJsonValue::Object);
}

TEST(MetricsTest, CounterConcurrentMergeIsLossless)
{
    Counter c;
    constexpr uint64_t kTotal = 200000;
    constexpr unsigned kWorkers = 8;
    parallelFor(kTotal, kWorkers,
                [&](unsigned, uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; i++)
                        c.inc();
                });
    EXPECT_EQ(c.value(), kTotal);

    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, IntHistogramConcurrentMergeIsLossless)
{
    IntHistogram h(16);
    constexpr uint64_t kTotal = 100000;
    parallelFor(kTotal, 8, [&](unsigned, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; i++)
            h.add(i % 20);  // Keys 17..19 land in overflow.
    });
    IntHistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.total, kTotal);
    uint64_t in_bins = 0;
    for (uint64_t b : snap.bins)
        in_bins += b;
    EXPECT_EQ(in_bins + snap.overflow, kTotal);
    EXPECT_EQ(snap.overflow, kTotal / 20 * 3);
    EXPECT_EQ(snap.bins[3], kTotal / 20);
    EXPECT_EQ(snap.maxObserved(), 16u);
}

TEST(MetricsTest, GaugeTracksMax)
{
    Gauge g;
    g.recordMax(5);
    g.recordMax(3);
    EXPECT_EQ(g.value(), 5);
    g.recordMax(11);
    EXPECT_EQ(g.value(), 11);
    g.set(2);
    EXPECT_EQ(g.value(), 2);
}

TEST(MetricsTest, LatencyMetricPercentilesAndExtremes)
{
    LatencyMetric m;
    // 1..1000 ns uniformly: log2 buckets are coarse, but the clamp to
    // observed extremes and interpolation must keep percentiles within
    // a factor of 2 and the min/max/mean exact.
    parallelFor(1000, 4, [&](unsigned, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; i++)
            m.record(static_cast<double>(i + 1));
    });
    LatencySnapshot s = m.snapshot();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.minNs, 1.0);
    EXPECT_DOUBLE_EQ(s.maxNs, 1000.0);
    EXPECT_NEAR(s.meanNs, 500.5, 0.5);
    EXPECT_GE(s.p50Ns, 250.0);
    EXPECT_LE(s.p50Ns, 1000.0);
    EXPECT_GE(s.p90Ns, 450.0);
    EXPECT_LE(s.p90Ns, 1000.0);
    EXPECT_GE(s.p99Ns, s.p90Ns);
    EXPECT_LE(s.p99Ns, 1000.0);

    m.reset();
    EXPECT_EQ(m.snapshot().count, 0u);
}

TEST(MetricsTest, LatencyHistogramPercentileMath)
{
    // 50 ns buckets: 10000 samples at exactly i ns for i in [0, 10000)
    // make percentiles analytically predictable to within one bucket.
    LatencyHistogram h(50.0, 20000.0);
    for (int i = 0; i < 10000; i++)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.p50Ns(), 5000.0, 50.0);
    EXPECT_NEAR(h.p90Ns(), 9000.0, 50.0);
    EXPECT_NEAR(h.p99Ns(), 9900.0, 50.0);

    // A single sample: every percentile is that sample.
    LatencyHistogram one(50.0, 20000.0);
    one.add(123.0);
    EXPECT_DOUBLE_EQ(one.p50Ns(), 123.0);
    EXPECT_DOUBLE_EQ(one.p99Ns(), 123.0);

    // Overflow samples report the observed maximum.
    LatencyHistogram ovf(50.0, 100.0);
    ovf.add(50000.0);
    EXPECT_DOUBLE_EQ(ovf.p99Ns(), 50000.0);
}

TEST(MetricsTest, RegistryReferencesSurviveReset)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    Counter &c = reg.counter("test.reset_stability");
    c.add(7);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(3);
    // Same name must resolve to the same object.
    EXPECT_EQ(reg.counter("test.reset_stability").value(), 3u);
    reg.reset();
}

TEST(ScopedTimerTest, NestingBuildsSlashPaths)
{
    TelemetryOn on;
    MetricsRegistry::global().reset();

    EXPECT_EQ(ScopedTimer::currentPath(), "");
    EXPECT_EQ(ScopedTimer::currentDepth(), 0u);
    {
        ScopedTimer outer("outer");
        EXPECT_EQ(outer.path(), "outer");
        EXPECT_EQ(ScopedTimer::currentPath(), "outer");
        EXPECT_EQ(ScopedTimer::currentDepth(), 1u);
        {
            ScopedTimer inner("inner");
            EXPECT_EQ(inner.path(), "outer/inner");
            EXPECT_EQ(ScopedTimer::currentPath(), "outer/inner");
            EXPECT_EQ(ScopedTimer::currentDepth(), 2u);
            EXPECT_GE(inner.elapsedNs(), 0.0);
        }
        EXPECT_EQ(ScopedTimer::currentPath(), "outer");
    }
    EXPECT_EQ(ScopedTimer::currentDepth(), 0u);

    auto spans = MetricsRegistry::global().latencyValues();
    ASSERT_TRUE(spans.count("span.outer"));
    ASSERT_TRUE(spans.count("span.outer/inner"));
    EXPECT_EQ(spans["span.outer"].count, 1u);
    EXPECT_EQ(spans["span.outer/inner"].count, 1u);
    // The inner span completes before the outer one, so its time is
    // contained in the outer's.
    EXPECT_LE(spans["span.outer/inner"].maxNs,
              spans["span.outer"].maxNs);
    MetricsRegistry::global().reset();
}

TEST(ExportTest, MetricsJsonRoundTrip)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.reset();
    reg.counter("rt.counter").add(17);
    reg.gauge("rt.gauge").set(-4);
    reg.intHistogram("rt.hist").add(2, 5);
    reg.intHistogram("rt.hist").add(200);  // Overflow.
    reg.latency("rt.lat").record(128.0);

    LocalJsonValue doc;
    ASSERT_TRUE(parseJson(metricsToJson(reg), doc));

    EXPECT_EQ(doc["counters"]["rt.counter"].num, 17.0);
    EXPECT_EQ(doc["gauges"]["rt.gauge"].num, -4.0);
    const LocalJsonValue &h = doc["int_histograms"]["rt.hist"];
    EXPECT_EQ(h["total"].num, 6.0);
    EXPECT_EQ(h["overflow"].num, 1.0);
    EXPECT_EQ(h["bins"]["2"].num, 5.0);
    const LocalJsonValue &l = doc["latency_histograms"]["rt.lat"];
    EXPECT_EQ(l["count"].num, 1.0);
    EXPECT_DOUBLE_EQ(l["min_ns"].num, 128.0);
    EXPECT_DOUBLE_EQ(l["max_ns"].num, 128.0);
    EXPECT_DOUBLE_EQ(l["p50_ns"].num, 128.0);
    reg.reset();
}

TEST(ExportTest, TraceWriterEmitsParsableJsonl)
{
    const std::string path =
        ::testing::TempDir() + "/astrea_trace_test.jsonl";
    {
        TraceWriter tw(path);
        ASSERT_TRUE(tw.ok());
        JsonWriter a;
        a.beginObject().kv("type", "shot").kv("shot", uint64_t{1});
        a.endObject();
        tw.line(a.str());
        JsonWriter b;
        b.beginObject().kv("type", "span").kv("ns", 17.5);
        b.endObject();
        tw.line(b.str());
        EXPECT_EQ(tw.linesWritten(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<LocalJsonValue> events;
    while (std::getline(in, line)) {
        LocalJsonValue v;
        ASSERT_TRUE(parseJson(line, v)) << line;
        events.push_back(v);
    }
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0]["type"].str, "shot");
    EXPECT_EQ(events[0]["shot"].num, 1.0);
    EXPECT_EQ(events[1]["type"].str, "span");
    EXPECT_DOUBLE_EQ(events[1]["ns"].num, 17.5);
    std::remove(path.c_str());
}

TEST(ExportTest, GlobalTraceCapturesSpans)
{
    TelemetryOn on;
    const std::string path =
        ::testing::TempDir() + "/astrea_span_trace.jsonl";
    setGlobalTraceFile(path);
    {
        ScopedTimer t("traced_span");
    }
    setGlobalTraceFile("");  // Flush and disable.

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    bool found = false;
    while (std::getline(in, line)) {
        LocalJsonValue v;
        ASSERT_TRUE(parseJson(line, v)) << line;
        if (v["type"].str == "span" &&
            v["path"].str == "traced_span") {
            EXPECT_GE(v["ns"].num, 0.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
    MetricsRegistry::global().reset();
}

TEST(ExportTest, ParseTraceStrideValidation)
{
    bool invalid = true;
    EXPECT_EQ(parseTraceStride(nullptr, &invalid), 1u);
    EXPECT_FALSE(invalid);
    EXPECT_EQ(parseTraceStride("", &invalid), 1u);
    EXPECT_FALSE(invalid);

    EXPECT_EQ(parseTraceStride("5", &invalid), 5u);
    EXPECT_FALSE(invalid);
    EXPECT_EQ(parseTraceStride("1000000", &invalid), 1000000u);
    EXPECT_FALSE(invalid);

    // A zero stride would divide by zero in shot % stride; garbage
    // must fall back to sampling every shot rather than none.
    EXPECT_EQ(parseTraceStride("0", &invalid), 1u);
    EXPECT_TRUE(invalid);
    EXPECT_EQ(parseTraceStride("abc", &invalid), 1u);
    EXPECT_TRUE(invalid);
    EXPECT_EQ(parseTraceStride("3x", &invalid), 1u);
    EXPECT_TRUE(invalid);
    EXPECT_EQ(parseTraceStride("-2", &invalid), 1u);
    EXPECT_TRUE(invalid);

    // The null flag form must not crash.
    EXPECT_EQ(parseTraceStride("7", nullptr), 7u);
}

TEST(LoggingTest, LevelFilterDropsBelowThreshold)
{
    LogLevel saved = logLevel();

    setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));

    ::testing::internal::CaptureStderr();
    inform("should be dropped");
    warn("should appear");
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("should be dropped"), std::string::npos);
    EXPECT_NE(err.find("warn: should appear"), std::string::npos);

    setLogLevel(LogLevel::Off);
    ::testing::internal::CaptureStderr();
    error("silent");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(saved);
}

TEST(HarnessTelemetryTest, GiveUpHwHistogramIsRecorded)
{
    // A crippled Astrea (HW limit 2) at a noisy operating point gives
    // up on every HW > 2 syndrome; the harness must record the HW of
    // each give-up.
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 2e-2;
    ExperimentContext ctx(cfg);

    AstreaConfig acfg;
    acfg.maxHammingWeight = 2;
    ExperimentResult r = runMemoryExperiment(ctx, astreaFactory(acfg),
                                             2000, 99, 2);
    ASSERT_GT(r.gaveUps, 0u);
    EXPECT_EQ(r.gaveUpHw.total(), r.gaveUps);
    // Every give-up happened at HW > 2 by construction.
    EXPECT_EQ(r.gaveUpHw.at(0), 0u);
    EXPECT_EQ(r.gaveUpHw.at(1), 0u);
    EXPECT_EQ(r.gaveUpHw.at(2), 0u);
    EXPECT_GE(r.gaveUpHw.maxObserved(), 3u);
    // Latency percentile accessors are populated alongside.
    EXPECT_GE(r.latencyHist.samples(), r.logicalErrors.trials);
}

TEST(HarnessTelemetryTest, ExperimentPopulatesRegistry)
{
    TelemetryOn on;
    MetricsRegistry::global().reset();

    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-2;
    ExperimentContext ctx(cfg);
    ExperimentResult r =
        runMemoryExperiment(ctx, astreaFactory(), 1000, 7, 2);

    auto counters = MetricsRegistry::global().counterValues();
    ASSERT_TRUE(counters.count("experiment.shots"));
    EXPECT_EQ(counters["experiment.shots"], 1000u);
    ASSERT_TRUE(counters.count("astrea.decodes"));
    EXPECT_GT(counters["astrea.decodes"], 0u);
    EXPECT_EQ(counters["experiment.logical_errors"],
              r.logicalErrors.successes);

    auto hists = MetricsRegistry::global().intHistogramValues();
    ASSERT_TRUE(hists.count("astrea.decode_hw"));
    EXPECT_EQ(hists["astrea.decode_hw"].total, 1000u);
    MetricsRegistry::global().reset();
}
