/**
 * @file
 * Tests for the SIGPROF sampling profiler
 * (telemetry/sampling_profiler.hh). ITIMER_PROF needs no perf
 * permissions, so unlike the counter tests these can demand real
 * samples: spin CPU under the timer and require a non-empty profile
 * in both output formats, plus the start/stop/clear state machine.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "telemetry/json_value.hh"
#include "telemetry/sampling_profiler.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

/** Burn CPU until `ms` of wall time has passed (keeps SIGPROF firing). */
void
spinFor(int ms)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms);
    volatile uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until)
        for (int i = 0; i < 1000; i++)
            sink += i;
}

TEST(SamplingProfilerTest, CapturesSamplesWhileSpinning)
{
    SamplingProfiler &p = SamplingProfiler::global();
    p.clear();
    std::string error;
    ASSERT_TRUE(p.start(997, &error)) << error;
    EXPECT_TRUE(p.running());
    spinFor(400);
    p.stop();
    EXPECT_FALSE(p.running());

    // ~400 CPU-ms at 997 Hz; even a heavily shared machine lands a
    // handful of ticks.
    EXPECT_GT(p.sampleCount(), 0u);

    std::string collapsed = p.collapsed();
    ASSERT_FALSE(collapsed.empty());
    // Every line is "frame;frame;... count".
    std::istringstream in(collapsed);
    std::string line;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        EXPECT_NE(line.substr(0, space).find_first_not_of(' '),
                  std::string::npos);
    }
    p.clear();
}

TEST(SamplingProfilerTest, SpeedscopeJsonShape)
{
    SamplingProfiler &p = SamplingProfiler::global();
    p.clear();
    std::string error;
    ASSERT_TRUE(p.start(997, &error)) << error;
    spinFor(300);
    p.stop();
    ASSERT_GT(p.sampleCount(), 0u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(p.speedscopeJson(), doc));
    EXPECT_EQ(doc["$schema"].asString(),
              "https://www.speedscope.app/file-format-schema.json");
    ASSERT_TRUE(doc.has("shared"));
    ASSERT_TRUE(doc["shared"].has("frames"));
    ASSERT_TRUE(doc.has("profiles"));
    ASSERT_FALSE(doc["profiles"].arr.empty());
    const JsonValue &prof = doc["profiles"].arr[0];
    EXPECT_EQ(prof["type"].asString(), "sampled");
    EXPECT_EQ(prof["unit"].asString(), "none");
    EXPECT_EQ(prof["samples"].arr.size(), prof["weights"].arr.size());
    EXPECT_GT(prof["samples"].arr.size(), 0u);
    p.clear();
}

TEST(SamplingProfilerTest, DoubleStartFails)
{
    SamplingProfiler &p = SamplingProfiler::global();
    p.clear();
    std::string error;
    ASSERT_TRUE(p.start(101, &error)) << error;
    EXPECT_FALSE(p.start(101, &error));
    EXPECT_NE(error, "");
    p.stop();
    p.clear();
}

TEST(SamplingProfilerTest, ClearDiscardsSamples)
{
    SamplingProfiler &p = SamplingProfiler::global();
    p.clear();
    std::string error;
    ASSERT_TRUE(p.start(997, &error)) << error;
    spinFor(200);
    p.stop();
    ASSERT_GT(p.sampleCount(), 0u);
    p.clear();
    EXPECT_EQ(p.sampleCount(), 0u);
    EXPECT_TRUE(p.collapsed().empty());
}

TEST(SamplingProfilerTest, StopWithoutStartIsHarmless)
{
    SamplingProfiler &p = SamplingProfiler::global();
    EXPECT_FALSE(p.running());
    p.stop();
    EXPECT_FALSE(p.running());
}

} // namespace
