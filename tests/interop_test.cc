/**
 * @file
 * Tests for the Stim-format exporters.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/memory_experiment.hh"
#include "interop/stim_export.hh"

namespace astrea
{
namespace
{

TEST(StimCircuit, GoldenSmallCircuit)
{
    CircuitBuilder b(2);
    b.reset({0, 1});
    b.hadamard({0});
    b.cx({0, 1});
    b.depolarize2(0.001, {0, 1});
    b.xError(0.25, {1});
    auto m = b.measure({0, 1});
    b.detector({m[0]}, DetectorInfo{});
    b.detector({m[0], m[1]}, DetectorInfo{});
    b.observable(0, {m[1]});
    Circuit c = b.build();

    EXPECT_EQ(toStimCircuit(c),
              "R 0 1\n"
              "H 0\n"
              "CX 0 1\n"
              "DEPOLARIZE2(0.001) 0 1\n"
              "X_ERROR(0.25) 1\n"
              "M 0 1\n"
              "DETECTOR rec[-2]\n"
              "DETECTOR rec[-2] rec[-1]\n"
              "OBSERVABLE_INCLUDE(0) rec[-1]\n");
}

TEST(StimCircuit, LookbacksSpanMeasurementLayers)
{
    CircuitBuilder b(1);
    b.reset({0});
    auto m1 = b.measure({0});
    auto m2 = b.measure({0});
    b.detector({m1[0], m2[0]}, DetectorInfo{});
    Circuit c = b.build();
    std::string s = toStimCircuit(c);
    EXPECT_NE(s.find("DETECTOR rec[-2] rec[-1]"), std::string::npos);
}

TEST(StimCircuit, TickAndMr)
{
    Circuit c(1);
    c.appendGate(GateType::Tick, {});
    c.appendGate(GateType::MR, {0});
    std::string s = toStimCircuit(c);
    EXPECT_EQ(s, "TICK\nMR 0\n");
}

TEST(StimCircuit, MemoryCircuitExports)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    std::string s = toStimCircuit(ctx.circuit());

    // One DETECTOR line per detector, one OBSERVABLE_INCLUDE.
    size_t detectors = 0, observables = 0, pos = 0;
    while ((pos = s.find("DETECTOR", pos)) != std::string::npos) {
        detectors++;
        pos++;
    }
    pos = 0;
    while ((pos = s.find("OBSERVABLE_INCLUDE", pos)) !=
           std::string::npos) {
        observables++;
        pos++;
    }
    EXPECT_EQ(detectors, ctx.circuit().numDetectors());
    EXPECT_EQ(observables, 1u);
    // No absolute record indices may leak through.
    EXPECT_EQ(s.find("rec[0]"), std::string::npos);
    EXPECT_EQ(s.find("rec[-0]"), std::string::npos);
}

TEST(StimDem, GoldenLines)
{
    ErrorModel m(4, 2);
    m.addMechanism(0.125, {1, 3}, 0);
    m.addMechanism(0.5, {0}, 0b11);
    std::string s = toStimDem(m);
    EXPECT_EQ(s,
              "error(0.125) D1 D3\n"
              "error(0.5) D0 L0 L1\n");
}

TEST(StimDem, MemoryModelExports)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    std::string s = toStimDem(ctx.errorModel());
    size_t lines = 0, pos = 0;
    while ((pos = s.find('\n', pos)) != std::string::npos) {
        lines++;
        pos++;
    }
    EXPECT_EQ(lines, ctx.errorModel().mechanisms().size());
    EXPECT_NE(s.find("error("), std::string::npos);
}

TEST(WriteTextFile, RoundTrip)
{
    std::string path =
        std::string(::testing::TempDir()) + "stim_export_test.txt";
    writeTextFile(path, "hello\nworld\n");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {0};
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    EXPECT_EQ(std::string(buf, n), "hello\nworld\n");
    std::remove(path.c_str());
}

TEST(WriteTextFile, FatalOnBadPath)
{
    EXPECT_EXIT(writeTextFile("/nonexistent/dir/file.txt", "x"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace astrea
