/**
 * @file
 * Tests for the typed environment readers (common/env.hh): defaults on
 * unset, parsing, malformed-value fallbacks and the boolean token set.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace astrea;

namespace
{

/** Scoped setenv that restores the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        if (prev != nullptr) {
            had_ = true;
            prev_ = prev;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string prev_;
};

TEST(EnvTest, UnsetYieldsDefaults)
{
    ScopedEnv clear("ASTREA_ENV_TEST_X", nullptr);
    EXPECT_EQ(env::raw("ASTREA_ENV_TEST_X"), nullptr);
    EXPECT_EQ(env::getString("ASTREA_ENV_TEST_X", "dflt"), "dflt");
    EXPECT_TRUE(env::getBool("ASTREA_ENV_TEST_X", true));
    EXPECT_FALSE(env::getBool("ASTREA_ENV_TEST_X", false));
    EXPECT_EQ(env::getUint("ASTREA_ENV_TEST_X", 42), 42u);
    EXPECT_DOUBLE_EQ(env::getDouble("ASTREA_ENV_TEST_X", 2.5), 2.5);
}

TEST(EnvTest, StringAndUintParse)
{
    ScopedEnv s("ASTREA_ENV_TEST_X", "1234");
    EXPECT_EQ(env::getString("ASTREA_ENV_TEST_X", ""), "1234");
    EXPECT_EQ(env::getUint("ASTREA_ENV_TEST_X", 0), 1234u);
}

TEST(EnvTest, BoolTokens)
{
    for (const char *f : {"", "0", "off", "OFF", "false", "False",
                          "no", "No"}) {
        ScopedEnv s("ASTREA_ENV_TEST_X", f);
        EXPECT_FALSE(env::getBool("ASTREA_ENV_TEST_X", true))
            << "token '" << f << "'";
    }
    for (const char *t : {"1", "on", "true", "yes", "weird"}) {
        ScopedEnv s("ASTREA_ENV_TEST_X", t);
        EXPECT_TRUE(env::getBool("ASTREA_ENV_TEST_X", false))
            << "token '" << t << "'";
    }
}

TEST(EnvTest, MalformedUintFallsBackToDefault)
{
    env::resetWarningsForTest();
    for (const char *bad : {"abc", "12x", "-3", "-", ""}) {
        ScopedEnv s("ASTREA_ENV_TEST_X", bad);
        EXPECT_EQ(env::getUint("ASTREA_ENV_TEST_X", 7), 7u)
            << "value '" << bad << "'";
    }
}

TEST(EnvTest, UintBelowMinimumFallsBackToDefault)
{
    env::resetWarningsForTest();
    ScopedEnv s("ASTREA_ENV_TEST_X", "1");
    EXPECT_EQ(env::getUint("ASTREA_ENV_TEST_X", 8, 4), 8u);
    ScopedEnv s2("ASTREA_ENV_TEST_Y", "4");
    EXPECT_EQ(env::getUint("ASTREA_ENV_TEST_Y", 8, 4), 4u);
}

TEST(EnvTest, DoubleParsesAndRejectsGarbage)
{
    env::resetWarningsForTest();
    {
        ScopedEnv s("ASTREA_ENV_TEST_X", "1e-3");
        EXPECT_DOUBLE_EQ(env::getDouble("ASTREA_ENV_TEST_X", 0.0),
                         1e-3);
    }
    {
        ScopedEnv s("ASTREA_ENV_TEST_X", "nope");
        EXPECT_DOUBLE_EQ(env::getDouble("ASTREA_ENV_TEST_X", 0.5),
                         0.5);
    }
    {
        ScopedEnv s("ASTREA_ENV_TEST_X", "inf");
        EXPECT_DOUBLE_EQ(env::getDouble("ASTREA_ENV_TEST_X", 0.5),
                         0.5);
    }
}

} // namespace
