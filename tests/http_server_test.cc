/**
 * @file
 * Tests for the minimal HTTP server and client (src/net/): ephemeral
 * port binding, GET round-trips over a real loopback socket, 404/405
 * handling, HEAD semantics and clean shutdown.
 */

#include <gtest/gtest.h>

#include <string>

#include "net/http_client.hh"
#include "net/http_server.hh"

using namespace astrea;
using namespace astrea::net;

namespace
{

TEST(HttpServerTest, EphemeralPortRoundTrip)
{
    HttpServer server;
    server.handle("/hello", [](const HttpRequest &req) {
        HttpResponse r;
        r.body = "hi " + req.method + "\n";
        return r;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;
    ASSERT_NE(server.port(), 0);

    HttpResult res;
    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/hello", res,
                        &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "hi GET\n");
    EXPECT_EQ(res.contentType, "text/plain; charset=utf-8");

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, NotFoundAndQueryStripping)
{
    HttpServer server;
    std::string seen_query;
    server.handle("/q", [&](const HttpRequest &req) {
        seen_query = req.query;
        return HttpResponse{};
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/nope", res, &error))
        << error;
    EXPECT_EQ(res.status, 404);

    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/q?a=1&b=2", res,
                        &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(seen_query, "a=1&b=2");
    EXPECT_GE(server.requestsServed(), 2u);
}

TEST(HttpServerTest, HandlerStatusAndContentTypePropagate)
{
    HttpServer server;
    server.handle("/unwell", [](const HttpRequest &) {
        HttpResponse r;
        r.status = 503;
        r.contentType = "application/json";
        r.body = "{\"ok\":false}";
        return r;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/unwell", res, &error))
        << error;
    EXPECT_EQ(res.status, 503);
    EXPECT_EQ(res.contentType, "application/json");
    EXPECT_EQ(res.body, "{\"ok\":false}");
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable)
{
    HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;
    server.stop();
    server.stop();  // Second stop is a no-op.

    HttpServer second;
    ASSERT_TRUE(second.start("127.0.0.1", 0, &error)) << error;
    second.stop();
}

} // namespace
