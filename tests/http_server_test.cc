/**
 * @file
 * Tests for the minimal HTTP server and client (src/net/): ephemeral
 * port binding, GET round-trips over a real loopback socket, 404/405
 * handling, HEAD semantics, clean shutdown, header parsing, prefix
 * routing, and the per-connection abuse limits (whole-head deadline
 * and size caps).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "net/http_client.hh"
#include "net/http_server.hh"

using namespace astrea;
using namespace astrea::net;

namespace
{

/** Raw loopback connection for tests that misbehave on purpose. */
int
rawConnect(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: the abuse tests keep sending after the server
        // closed on us; that must fail, not SIGPIPE the test binary.
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Read until the peer closes (the server closes after responding). */
std::string
rawReadAll(int fd)
{
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<size_t>(n));
    return out;
}

TEST(HttpServerTest, EphemeralPortRoundTrip)
{
    HttpServer server;
    server.handle("/hello", [](const HttpRequest &req) {
        HttpResponse r;
        r.body = "hi " + req.method + "\n";
        return r;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;
    ASSERT_NE(server.port(), 0);

    HttpResult res;
    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/hello", res,
                        &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "hi GET\n");
    EXPECT_EQ(res.contentType, "text/plain; charset=utf-8");

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, NotFoundAndQueryStripping)
{
    HttpServer server;
    std::string seen_query;
    server.handle("/q", [&](const HttpRequest &req) {
        seen_query = req.query;
        return HttpResponse{};
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/nope", res, &error))
        << error;
    EXPECT_EQ(res.status, 404);

    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/q?a=1&b=2", res,
                        &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(seen_query, "a=1&b=2");
    EXPECT_GE(server.requestsServed(), 2u);
}

TEST(HttpServerTest, HandlerStatusAndContentTypePropagate)
{
    HttpServer server;
    server.handle("/unwell", [](const HttpRequest &) {
        HttpResponse r;
        r.status = 503;
        r.contentType = "application/json";
        r.body = "{\"ok\":false}";
        return r;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/unwell", res, &error))
        << error;
    EXPECT_EQ(res.status, 503);
    EXPECT_EQ(res.contentType, "application/json");
    EXPECT_EQ(res.body, "{\"ok\":false}");
}

TEST(HttpServerTest, HeadersParseLowercasedAndCaseInsensitive)
{
    HttpServer server;
    std::string accept, missing;
    server.handle("/h", [&](const HttpRequest &req) {
        accept = req.header("ACCEPT");  // Lookup is case-insensitive.
        missing = req.header("x-not-there");
        return HttpResponse{};
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(rawSendAll(
        fd, "GET /h HTTP/1.1\r\nHost: x\r\n"
            "Accept:  application/openmetrics-text  \r\n\r\n"));
    std::string resp = rawReadAll(fd);
    ::close(fd);

    EXPECT_NE(resp.find("200"), std::string::npos) << resp;
    EXPECT_EQ(accept, "application/openmetrics-text");  // OWS trimmed.
    EXPECT_EQ(missing, "");
}

TEST(HttpServerTest, PrefixRoutingLongestWinsExactFirst)
{
    HttpServer server;
    server.handle("/traces", [](const HttpRequest &) {
        HttpResponse r;
        r.body = "index";
        return r;
    });
    server.handlePrefix("/traces/", [](const HttpRequest &req) {
        HttpResponse r;
        r.body = "detail:" + req.path;
        return r;
    });
    server.handlePrefix("/t", [](const HttpRequest &) {
        HttpResponse r;
        r.body = "short";
        return r;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/traces", res, &error))
        << error;
    EXPECT_EQ(res.body, "index");  // Exact match beats both prefixes.

    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/traces/deadbeef",
                        res, &error))
        << error;
    EXPECT_EQ(res.body, "detail:/traces/deadbeef");  // Longest prefix.

    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/tx", res, &error))
        << error;
    EXPECT_EQ(res.body, "short");
}

TEST(HttpServerTest, SlowLorisHitsHeadDeadline)
{
    HttpServer server;
    server.handle("/", [](const HttpRequest &) {
        return HttpResponse{};
    });
    HttpLimits limits;
    limits.headDeadlineMillis = 300;
    server.setLimits(limits);

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    // Trickle the head a byte at a time: each send resets a naive
    // per-recv timer, but the whole-head deadline still fires.
    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    const std::string head = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
    const auto start = std::chrono::steady_clock::now();
    std::string resp;
    for (char c : head) {
        if (!rawSendAll(fd, std::string(1, c)))
            break;  // Server already gave up on us.
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed > 2000)
            break;  // Deadline should long since have fired.
    }
    resp = rawReadAll(fd);
    ::close(fd);

    EXPECT_NE(resp.find("408"), std::string::npos) << resp;
}

TEST(HttpServerTest, FastClientUnaffectedByDeadline)
{
    HttpServer server;
    server.handle("/ok", [](const HttpRequest &) {
        HttpResponse r;
        r.body = "fine";
        return r;
    });
    HttpLimits limits;
    limits.headDeadlineMillis = 300;
    server.setLimits(limits);

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    HttpResult res;
    ASSERT_TRUE(
        httpGet("127.0.0.1", server.port(), "/ok", res, &error))
        << error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "fine");
}

TEST(HttpServerTest, OversizedHeadRejectedWith431)
{
    HttpServer server;
    server.handle("/", [](const HttpRequest &) {
        return HttpResponse{};
    });
    HttpLimits limits;
    limits.maxHeadBytes = 1024;
    server.setLimits(limits);

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string head = "GET / HTTP/1.1\r\nHost: x\r\n";
    head += "X-Filler: " + std::string(4096, 'a') + "\r\n\r\n";
    rawSendAll(fd, head);  // Server may close mid-send; that is fine.
    std::string resp = rawReadAll(fd);
    ::close(fd);

    EXPECT_NE(resp.find("431"), std::string::npos) << resp;
}

TEST(HttpServerTest, OversizedRequestLineRejectedWith431)
{
    HttpServer server;
    server.handle("/", [](const HttpRequest &) {
        return HttpResponse{};
    });
    HttpLimits limits;
    limits.maxRequestLineBytes = 128;
    server.setLimits(limits);

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string head = "GET /" + std::string(512, 'q') +
                       " HTTP/1.1\r\nHost: x\r\n\r\n";
    rawSendAll(fd, head);
    std::string resp = rawReadAll(fd);
    ::close(fd);

    EXPECT_NE(resp.find("431"), std::string::npos) << resp;
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable)
{
    HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;
    server.stop();
    server.stop();  // Second stop is a no-op.

    HttpServer second;
    ASSERT_TRUE(second.start("127.0.0.1", 0, &error)) << error;
    second.stop();
}

/**
 * Read exactly one HTTP response (head + Content-Length body).
 * `carry` holds bytes recv'd past the response boundary (the start of
 * the next pipelined response) for the following call.
 */
std::string
rawReadOneResponse(int fd, std::string &carry)
{
    std::string out = std::move(carry);
    carry.clear();
    char buf[4096];
    size_t head_end;
    while ((head_end = out.find("\r\n\r\n")) == std::string::npos) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return out;
        out.append(buf, static_cast<size_t>(n));
    }
    size_t body_len = 0;
    const std::string marker = "Content-Length: ";
    size_t cl = out.find(marker);
    if (cl != std::string::npos && cl < head_end)
        body_len = static_cast<size_t>(
            std::atoll(out.c_str() + cl + marker.size()));
    const size_t total = head_end + 4 + body_len;
    while (out.size() < total) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return out;
        out.append(buf, static_cast<size_t>(n));
    }
    carry = out.substr(total);
    return out.substr(0, total);
}

TEST(HttpServerTest, KeepAliveServesMultipleRequestsPerConnection)
{
    HttpServer server;
    int hits = 0;
    server.handle("/count", [&](const HttpRequest &) {
        HttpResponse r;
        r.body = "hit " + std::to_string(++hits) + "\n";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string rcarry;

    // Three sequential requests on ONE connection.
    for (int i = 1; i <= 3; i++) {
        ASSERT_TRUE(rawSendAll(
            fd, "GET /count HTTP/1.1\r\nHost: x\r\n\r\n"));
        const std::string resp = rawReadOneResponse(fd, rcarry);
        EXPECT_NE(resp.find("200 OK"), std::string::npos) << resp;
        EXPECT_NE(resp.find("Connection: keep-alive"),
                  std::string::npos)
            << resp;
        EXPECT_NE(resp.find("hit " + std::to_string(i) + "\n"),
                  std::string::npos)
            << resp;
    }

    // An explicit close is honored and the socket actually closes.
    ASSERT_TRUE(rawSendAll(fd, "GET /count HTTP/1.1\r\nHost: x\r\n"
                               "Connection: close\r\n\r\n"));
    const std::string last = rawReadOneResponse(fd, rcarry);
    EXPECT_NE(last.find("Connection: close"), std::string::npos)
        << last;
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "server held the "
                                             "connection open";
    ::close(fd);
    EXPECT_EQ(hits, 4);
    server.stop();
}

TEST(HttpServerTest, KeepAliveIsBoundedPerConnection)
{
    HttpServer server;
    server.handle("/x", [](const HttpRequest &) {
        return HttpResponse{};
    });
    HttpLimits limits;
    limits.maxRequestsPerConnection = 2;
    server.setLimits(limits);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string rcarry;
    ASSERT_TRUE(rawSendAll(fd, "GET /x HTTP/1.1\r\nHost: x\r\n\r\n"));
    std::string first = rawReadOneResponse(fd, rcarry);
    EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos)
        << first;
    // The 2nd (= last allowed) request gets Connection: close.
    ASSERT_TRUE(rawSendAll(fd, "GET /x HTTP/1.1\r\nHost: x\r\n\r\n"));
    std::string second = rawReadOneResponse(fd, rcarry);
    EXPECT_NE(second.find("Connection: close"), std::string::npos)
        << second;
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);
    server.stop();
}

TEST(HttpServerTest, PipelinedRequestsAllGetResponses)
{
    HttpServer server;
    int hits = 0;
    server.handle("/p", [&](const HttpRequest &) {
        HttpResponse r;
        r.body = "n=" + std::to_string(++hits) + "\n";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string rcarry;
    // Two requests in one write: the carry buffer must hand the 2nd
    // to the next serveOneRequest iteration instead of dropping it.
    ASSERT_TRUE(rawSendAll(fd, "GET /p HTTP/1.1\r\nHost: x\r\n\r\n"
                               "GET /p HTTP/1.1\r\nHost: x\r\n\r\n"));
    const std::string r1 = rawReadOneResponse(fd, rcarry);
    const std::string r2 = rawReadOneResponse(fd, rcarry);
    EXPECT_NE(r1.find("n=1\n"), std::string::npos) << r1;
    EXPECT_NE(r2.find("n=2\n"), std::string::npos) << r2;
    ::close(fd);
    EXPECT_EQ(hits, 2);
    server.stop();
}

TEST(HttpServerTest, Http10ConnectionsStillCloseAfterOneRequest)
{
    HttpServer server;
    server.handle("/x", [](const HttpRequest &) {
        return HttpResponse{};
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0, &error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(rawSendAll(fd, "GET /x HTTP/1.0\r\nHost: x\r\n\r\n"));
    const std::string resp = rawReadAll(fd);  // Reads until close.
    EXPECT_NE(resp.find("200 OK"), std::string::npos) << resp;
    EXPECT_NE(resp.find("Connection: close"), std::string::npos)
        << resp;
    ::close(fd);
    server.stop();
}

} // namespace
