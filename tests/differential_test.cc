/**
 * @file
 * Randomized differential testing across the decoder suite.
 *
 * For a spread of random (distance, error-rate, seed) configurations,
 * sample real syndromes and check the cross-decoder invariants that
 * must hold shot by shot, independent of statistics:
 *
 *  - MWPM's matching weight lower-bounds every other matcher's;
 *  - Astrea equals the exact optimum over quantized weights (HW <= 10);
 *  - LUT and MWPM predict identically;
 *  - every decoder returns a well-formed result on every input.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "decoders/greedy_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "harness/memory_experiment.hh"
#include "matching/dp_matcher.hh"

namespace astrea
{
namespace
{

struct Config
{
    uint32_t distance;
    double p;
    uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<Config>
{
};

TEST_P(DifferentialTest, CrossDecoderInvariants)
{
    const Config param = GetParam();
    ExperimentConfig cfg;
    cfg.distance = param.distance;
    cfg.physicalErrorRate = param.p;
    ExperimentContext ctx(cfg);

    MwpmDecoder mwpm(ctx.gwt());
    AstreaDecoder astrea(ctx.gwt());
    LutDecoder lut(ctx.gwt());
    GreedyDecoder greedy(ctx.gwt());
    UnionFindDecoder uf(ctx.graph());

    Rng rng(param.seed);
    BitVec dets, obs;
    int nontrivial = 0;
    for (int s = 0; s < 1500 && nontrivial < 400; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty())
            continue;
        nontrivial++;

        DecodeResult rm = mwpm.decode(defects);
        DecodeResult rg = greedy.decode(defects);
        DecodeResult ru = uf.decode(defects);
        DecodeResult rl = lut.decode(defects);

        // MWPM is the optimum over exact weights.
        EXPECT_LE(rm.matchingWeight, rg.matchingWeight + 1e-9);
        EXPECT_TRUE(std::isfinite(ru.matchingWeight));
        // LUT is memoized MWPM.
        EXPECT_EQ(rl.obsMask, rm.obsMask);
        // Every matching covers all defects: reported pairs count.
        size_t covered = 0;
        for (auto [a, b] : rm.matchedPairs)
            covered += (b < 0) ? 1 : 2;
        EXPECT_EQ(covered, defects.size());

        if (defects.size() <= 10) {
            DecodeResult ra = astrea.decode(defects);
            ASSERT_FALSE(ra.gaveUp);
            MatchingSolution dp = dpMatchWithBoundary(
                static_cast<int>(defects.size()),
                [&](int i, int j) {
                    return static_cast<double>(
                        ctx.gwt().pairWeight(defects[i], defects[j]));
                },
                [&](int i) {
                    return static_cast<double>(
                        ctx.gwt().pairWeight(defects[i], defects[i]));
                });
            EXPECT_NEAR(ra.matchingWeight * kWeightScale,
                        dp.totalWeight, 1e-6);
        }
    }
    EXPECT_GT(nontrivial, 50);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DifferentialTest,
    ::testing::Values(Config{3, 2e-3, 101}, Config{3, 8e-3, 202},
                      Config{5, 1e-3, 303}, Config{5, 4e-3, 404},
                      Config{7, 1e-3, 505}));

} // namespace
} // namespace astrea
