/**
 * @file
 * Tests for the decoding graph, Dijkstra, and the Global Weight Table:
 * structure, symmetry, path properties, and the paper's published SRAM
 * sizes (Table 6's GWT rows).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dem/extractor.hh"
#include "graph/decoding_graph.hh"
#include "graph/dijkstra.hh"
#include "graph/weight_table.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{
namespace
{

ErrorModel
memModel(uint32_t d, double p)
{
    SurfaceCodeLayout layout(d);
    MemoryExperimentSpec spec;
    spec.distance = d;
    spec.noise = NoiseModel::uniform(p);
    Circuit c = buildMemoryCircuit(layout, spec);
    return extractErrorModel(c);
}

TEST(DecodingGraph, HandmadeModel)
{
    // 3 detectors in a path: B -- 0 -- 1 -- 2 -- B, with an observable
    // on the (1,2) edge.
    ErrorModel m(3, 1);
    m.addMechanism(0.1, {0}, 0);        // Boundary edge at 0.
    m.addMechanism(0.01, {0, 1}, 0);
    m.addMechanism(0.01, {1, 2}, 1);
    m.addMechanism(0.1, {2}, 0);        // Boundary edge at 2.
    DecodingGraph g(m);

    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.edges().size(), 4u);
    EXPECT_GE(g.boundaryEdge(0), 0);
    EXPECT_EQ(g.boundaryEdge(1), -1);
    EXPECT_GE(g.boundaryEdge(2), 0);
    EXPECT_EQ(g.stats().decomposedMechanisms, 0u);
}

TEST(DecodingGraph, EdgeWeightIsLogOdds)
{
    ErrorModel m(2, 1);
    m.addMechanism(0.01, {0, 1}, 0);
    DecodingGraph g(m);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_NEAR(g.edges()[0].weight, std::log10(0.99 / 0.01), 1e-12);
}

TEST(DecodingGraph, ParallelMechanismsMerge)
{
    ErrorModel m(2, 1);
    m.addMechanism(0.01, {0, 1}, 0);
    m.addMechanism(0.02, {0, 1}, 0);
    // Distinct symptoms in the model (merged there only when equal
    // masks), but same endpoints + same obs -> one graph edge with
    // XOR-combined probability.
    DecodingGraph g(m);
    ASSERT_EQ(g.edges().size(), 1u);
    double expect = 0.01 * 0.98 + 0.02 * 0.99;
    EXPECT_NEAR(g.edges()[0].probability, expect, 1e-12);
}

TEST(DecodingGraph, ObsConflictKeepsLikelierEdge)
{
    ErrorModel m(2, 1);
    m.addMechanism(0.01, {0, 1}, 0);
    m.addMechanism(0.05, {0, 1}, 1);
    DecodingGraph g(m);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.stats().obsConflicts, 1u);
    EXPECT_EQ(g.edges()[0].obsMask, 1u);
}

TEST(DecodingGraph, OversizeMechanismDecomposes)
{
    ErrorModel m(4, 1);
    m.addMechanism(0.01, {0, 1, 2, 3}, 1);
    DecodingGraph g(m);
    EXPECT_EQ(g.stats().decomposedMechanisms, 1u);
    EXPECT_EQ(g.edges().size(), 2u);
}

TEST(Dijkstra, HandmadePathGraph)
{
    ErrorModel m(3, 1);
    m.addMechanism(0.1, {0}, 0);
    m.addMechanism(0.01, {0, 1}, 0);
    m.addMechanism(0.01, {1, 2}, 1);
    m.addMechanism(0.1, {2}, 0);
    DecodingGraph g(m);

    ShortestPaths sp = dijkstraFrom(g, 0);
    double w01 = std::log10(0.99 / 0.01);
    double w_b = std::log10(0.9 / 0.1);
    EXPECT_NEAR(sp.dist[1], w01, 1e-12);
    EXPECT_NEAR(sp.dist[2], 2 * w01, 1e-12);
    EXPECT_NEAR(sp.boundaryDist, w_b, 1e-12);
    // Path 0 -> 1 -> 2 crosses the observable-carrying edge.
    EXPECT_EQ(sp.obsMask[2], 1u);
    EXPECT_EQ(sp.obsMask[1], 0u);
}

TEST(Dijkstra, BoundaryViaNeighborWhenCheaper)
{
    // Node 1 has no boundary edge; its boundary distance goes through
    // node 0.
    ErrorModel m(2, 1);
    m.addMechanism(0.1, {0}, 1);
    m.addMechanism(0.05, {0, 1}, 0);
    DecodingGraph g(m);
    ShortestPaths sp = dijkstraFrom(g, 1);
    double expect = std::log10(0.95 / 0.05) + std::log10(0.9 / 0.1);
    EXPECT_NEAR(sp.boundaryDist, expect, 1e-12);
    EXPECT_EQ(sp.boundaryObs, 1u);
}

class GwtTest : public ::testing::TestWithParam<uint32_t>
{
  protected:
    void
    SetUp() override
    {
        model_ = std::make_unique<ErrorModel>(
            memModel(GetParam(), 1e-3));
        graph_ = std::make_unique<DecodingGraph>(*model_);
        gwt_ = std::make_unique<GlobalWeightTable>(*graph_);
    }

    std::unique_ptr<ErrorModel> model_;
    std::unique_ptr<DecodingGraph> graph_;
    std::unique_ptr<GlobalWeightTable> gwt_;
};

TEST_P(GwtTest, SizeMatchesSyndromeLength)
{
    uint32_t d = GetParam();
    EXPECT_EQ(gwt_->size(), syndromeVectorLength(d, d));
    // Table 6: the GWT occupies l^2 bytes (36 KB at d = 7).
    EXPECT_EQ(gwt_->sramBytes(),
              static_cast<size_t>(gwt_->size()) * gwt_->size());
}

TEST_P(GwtTest, WeightsAreSymmetric)
{
    for (uint32_t i = 0; i < gwt_->size(); i += 7) {
        for (uint32_t j = 0; j < gwt_->size(); j += 5) {
            EXPECT_EQ(gwt_->pairWeight(i, j), gwt_->pairWeight(j, i));
            EXPECT_EQ(gwt_->pairObs(i, j), gwt_->pairObs(j, i));
            EXPECT_DOUBLE_EQ(gwt_->exactWeight(i, j),
                             gwt_->exactWeight(j, i));
        }
    }
}

TEST_P(GwtTest, AllPairsFiniteAndPositive)
{
    // The Z decoding graph of a memory experiment is connected, so
    // every pair (and every boundary entry) has a finite weight.
    for (uint32_t i = 0; i < gwt_->size(); i++) {
        EXPECT_TRUE(std::isfinite(gwt_->exactWeight(i, i)));
        EXPECT_GT(gwt_->exactWeight(i, i), 0.0);
        for (uint32_t j = i + 1; j < gwt_->size(); j += 11) {
            EXPECT_TRUE(std::isfinite(gwt_->exactWeight(i, j)));
            EXPECT_GT(gwt_->exactWeight(i, j), 0.0);
        }
    }
}

TEST_P(GwtTest, TriangleInequality)
{
    // Shortest-path distances must satisfy the triangle inequality.
    const uint32_t n = gwt_->size();
    for (uint32_t i = 0; i < n; i += 13) {
        for (uint32_t j = 0; j < n; j += 11) {
            if (i == j)
                continue;
            for (uint32_t k = 0; k < n; k += 17) {
                if (k == i || k == j)
                    continue;
                EXPECT_LE(gwt_->exactWeight(i, j),
                          gwt_->exactWeight(i, k) +
                              gwt_->exactWeight(k, j) + 1e-9);
            }
        }
    }
}

TEST_P(GwtTest, EffectiveWeightNeverExceedsDirect)
{
    const uint32_t n = gwt_->size();
    for (uint32_t i = 0; i < n; i += 7) {
        for (uint32_t j = 0; j < n; j += 9) {
            if (i == j)
                continue;
            EXPECT_LE(gwt_->effectiveWeight(i, j),
                      static_cast<WeightSum>(gwt_->pairWeight(i, j)));
            WeightSum via = addWeights(gwt_->pairWeight(i, i),
                                       gwt_->pairWeight(j, j));
            EXPECT_LE(gwt_->effectiveWeight(i, j), via);
        }
    }
}

TEST_P(GwtTest, QuantizationError)
{
    // Quantized weights are within half an LSB of the exact value
    // (unless saturated).
    const uint32_t n = gwt_->size();
    for (uint32_t i = 0; i < n; i += 7) {
        for (uint32_t j = 0; j < n; j += 9) {
            QWeight q = gwt_->pairWeight(i, j);
            if (q == kInfiniteWeight)
                continue;
            EXPECT_NEAR(weightToDecades(q), gwt_->exactWeight(i, j),
                        0.5 / kWeightScale + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, GwtTest,
                         ::testing::Values(3u, 5u, 7u));

TEST(Gwt, Table6GwtSizes)
{
    // The paper reports 36 KB (d = 7) and 156 KB (d = 9) for the GWT;
    // these follow from l = 192 and l = 400.
    EXPECT_EQ(syndromeVectorLength(7, 7) * syndromeVectorLength(7, 7),
              36864u);  // 36 KB.
    EXPECT_EQ(syndromeVectorLength(9, 9) * syndromeVectorLength(9, 9),
              160000u);  // ~156 KB.
}

} // namespace
} // namespace astrea
