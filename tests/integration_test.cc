/**
 * @file
 * End-to-end integration tests: the accuracy relationships the paper's
 * evaluation depends on, across the full stack (circuit -> DEM ->
 * graph -> GWT -> decoders -> LER).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/memory_experiment.hh"

namespace astrea
{
namespace
{

ExperimentContext
makeContext(uint32_t d, double p, Basis basis = Basis::Z)
{
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    cfg.basis = basis;
    return ExperimentContext(cfg);
}

TEST(Integration, DistanceSuppressionUnderMwpm)
{
    // Exponential error suppression: LER(d=5) << LER(d=3) at fixed p.
    // p must sit below this noise model's threshold (~3e-3).
    ExperimentContext c3 = makeContext(3, 1.5e-3);
    ExperimentContext c5 = makeContext(5, 1.5e-3);
    auto r3 = runMemoryExperiment(c3, mwpmFactory(), 150000, 1);
    auto r5 = runMemoryExperiment(c5, mwpmFactory(), 150000, 1);
    ASSERT_GT(r3.logicalErrors.successes, 50u);
    EXPECT_LT(r5.ler() * 2.0, r3.ler());
}

TEST(Integration, AstreaMatchesMwpmAccuracyAtDistance3And5)
{
    // Paper Table 4: Astrea's LER equals MWPM's at d <= 7 (p = 1e-4);
    // we verify at inflated p where the statistics are cheap.
    for (uint32_t d : {3u, 5u}) {
        ExperimentContext ctx = makeContext(d, 2e-3);
        auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), 60000, 2);
        auto astrea = runMemoryExperiment(ctx, astreaFactory(), 60000,
                                          2);
        ASSERT_GT(mwpm.logicalErrors.successes, 5u) << "d=" << d;
        // Same shots, same weights: ratios should be very close.
        double ratio = astrea.ler() / mwpm.ler();
        EXPECT_GT(ratio, 0.7) << "d=" << d;
        EXPECT_LT(ratio, 1.4) << "d=" << d;
    }
}

TEST(Integration, AstreaGMatchesMwpmAtDistance7HighP)
{
    // Fig. 12's regime: d = 7, p = 1e-3-ish. Astrea alone gives up on
    // HW > 10 shots; Astrea-G must close that gap to MWPM levels.
    // The paper evaluates Astrea-G up to p = 1e-3 (Fig. 12); beyond
    // that the F=2/E=8 greedy search visibly trails MWPM.
    ExperimentContext ctx = makeContext(7, 1e-3);
    const uint64_t shots = 500000;
    auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), shots, 3);
    auto astrea = runMemoryExperiment(ctx, astreaFactory(), shots, 3);
    auto astrea_g =
        runMemoryExperiment(ctx, astreaGFactory(), shots, 3);

    // Astrea misses the HW > 10 shots entirely (~0.3% of shots,
    // Table 5), which dominates its LER at this p.
    EXPECT_GT(astrea.gaveUps, 500u);
    EXPECT_GT(astrea.ler(), 3.0 * mwpm.ler());
    // Astrea-G recovers them: no give-ups and an error count within
    // statistical reach of MWPM's.
    EXPECT_EQ(astrea_g.gaveUps, 0u);
    EXPECT_LE(astrea_g.logicalErrors.successes,
              mwpm.logicalErrors.successes * 3 + 10);
}

TEST(Integration, DecoderAccuracyOrdering)
{
    // MWPM <= Clique <= UF in accuracy, roughly (paper Fig. 4 and
    // Table 4: AFS/UF ~100x worse, Clique a few x worse).
    ExperimentContext ctx = makeContext(5, 3e-3);
    const uint64_t shots = 60000;
    auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), shots, 4);
    auto clique = runMemoryExperiment(ctx, cliqueFactory(), shots, 4);
    auto uf = runMemoryExperiment(ctx, unionFindFactory(), shots, 4);

    ASSERT_GT(mwpm.logicalErrors.successes, 10u);
    EXPECT_LE(mwpm.ler(), clique.ler() * 1.15);
    EXPECT_LT(mwpm.ler(), uf.ler());
}

TEST(Integration, LutLerEqualsMwpmLer)
{
    ExperimentContext ctx = makeContext(3, 3e-3);
    auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), 40000, 5, 1);
    auto lut = runMemoryExperiment(ctx, lutFactory(), 40000, 5, 1);
    EXPECT_EQ(mwpm.logicalErrors.successes,
              lut.logicalErrors.successes);
}

TEST(Integration, MemoryXBehavesLikeMemoryZ)
{
    // The noise model is symmetric; X and Z memory experiments should
    // produce statistically similar LERs (paper Sec. 3.4).
    ExperimentContext cz = makeContext(3, 3e-3, Basis::Z);
    ExperimentContext cx = makeContext(3, 3e-3, Basis::X);
    auto rz = runMemoryExperiment(cz, mwpmFactory(), 60000, 6);
    auto rx = runMemoryExperiment(cx, mwpmFactory(), 60000, 6);
    ASSERT_GT(rz.logicalErrors.successes, 10u);
    ASSERT_GT(rx.logicalErrors.successes, 10u);
    EXPECT_LT(std::abs(std::log10(rz.ler() / rx.ler())), 0.30);
}

TEST(Integration, AstreaRealTimeAtDistance7LowP)
{
    // The headline claim: at d = 7, p = 1e-4, Astrea decodes
    // everything it sees within 456 ns and gives up (at most) about as
    // often as the logical error rate would allow.
    ExperimentContext ctx = makeContext(7, 1e-4);
    auto r = runMemoryExperiment(ctx, astreaFactory(), 50000, 7);
    EXPECT_LE(r.latencyNs.max(), 456.0);
    EXPECT_LE(r.gaveUps, 5u);  // P(HW > 10) ~ 4e-6 at this p.
}

TEST(Integration, HammingWeightGrowsWithDistanceAndP)
{
    ExperimentContext small = makeContext(3, 1e-3);
    ExperimentContext big = makeContext(7, 1e-3);
    auto rs = runMemoryExperiment(small, astreaFactory(), 20000, 8);
    auto rb = runMemoryExperiment(big, astreaFactory(), 20000, 8);
    double mean_small = 0, mean_big = 0;
    for (size_t h = 1; h <= 40; h++) {
        mean_small += static_cast<double>(h) *
                      rs.hammingWeights.frequency(h);
        mean_big += static_cast<double>(h) *
                    rb.hammingWeights.frequency(h);
    }
    EXPECT_GT(mean_big, 3.0 * mean_small);
}

TEST(Integration, NontrivialLatencyMeanExceedsOverallMean)
{
    // Fig. 9 separates mean latency from mean over HW > 2 syndromes.
    ExperimentContext ctx = makeContext(5, 1e-3);
    auto r = runMemoryExperiment(ctx, astreaFactory(), 30000, 9);
    EXPECT_GT(r.latencyNontrivialNs.mean(), r.latencyNs.mean());
}

} // namespace
} // namespace astrea
