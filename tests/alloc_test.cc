/**
 * @file
 * Steady-state allocation test for the batch decode path.
 *
 * This binary links src/common/alloc_hook.cc, which replaces the global
 * operator new/delete with counting versions. After a warm-up pass that
 * lets every reusable buffer (DecodeResult, DecodeScratch, the decoder
 * extension slots, LUT memoization) reach its steady-state capacity, a
 * full decode pass over HW <= 10 syndromes must perform zero heap
 * allocations for the hardware decoders named in the issue: astrea,
 * astrea-g, greedy and lut. The same bar holds with per-decode tail
 * tracing armed and every trace retained, and for the audit queue's
 * producer side.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "audit/auditor.hh"
#include "compression/syndrome_codec.hh"
#include "common/alloc_counter.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "decoders/registry.hh"
#include "harness/fleet.hh"
#include "harness/memory_experiment.hh"
#include "net/fleet_protocol.hh"
#include "telemetry/decode_trace.hh"

namespace astrea
{
namespace
{

TEST(AllocCounter, HookIsInstalled)
{
    ASSERT_TRUE(allocHookInstalled());
    const uint64_t before = allocCount();
    auto *p = new int(42);
    EXPECT_GT(allocCount(), before);
    delete p;
}

TEST(AllocCounter, SteadyStateDecodeIsAllocationFree)
{
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    DecoderOptions opts = decoderOptionsFor(ctx);

    // Pre-sample syndromes inside Astrea's supported range so gaveUp
    // shots (which would be trivially allocation-free) don't dilute
    // the measurement.
    Rng rng(99);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> syndromes;
    size_t guard = 0;
    while (syndromes.size() < 200 && ++guard < 2000000) {
        ctx.sampler().sample(rng, dets, obs);
        const size_t hw = dets.popcount();
        if (hw >= 1 && hw <= 10)
            syndromes.push_back(dets.onesIndices());
    }
    ASSERT_GE(syndromes.size(), 100u);
    size_t max_hw = 0;
    for (const auto &s : syndromes)
        max_hw = std::max(max_hw, s.size());
    EXPECT_GE(max_hw, 3u) << "sampled only trivial syndromes";

    for (const std::string &name :
         {std::string("astrea"), std::string("astrea-g"),
          std::string("greedy"), std::string("lut")}) {
        SCOPED_TRACE(name);
        auto dec = makeDecoder(name, opts);
        DecodeResult dr;
        DecodeScratch scratch;
        // Two warm-up passes: the first grows buffers and populates
        // memoization, the second confirms capacities are settled.
        for (int pass = 0; pass < 2; pass++) {
            for (const auto &s : syndromes)
                dec->decodeInto(s, dr, scratch);
        }
        const uint64_t before = allocCount();
        for (const auto &s : syndromes)
            dec->decodeInto(s, dr, scratch);
        const uint64_t allocs = allocCount() - before;
        EXPECT_EQ(allocs, 0u)
            << name << " allocated " << allocs << " times across "
            << syndromes.size() << " steady-state decodes";
    }
}

TEST(AllocCounter, SteadyStateBatchDecodeIsAllocationFree)
{
    // The shot-major wide path: decodeBatch over mixed-HW batches
    // (trivial, bucketed, give-up shots interleaved) must not touch
    // the heap once the SoA tile block, the results vector and the
    // bucket order scratch have reached steady-state capacity.
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    DecoderOptions opts = decoderOptionsFor(ctx);

    Rng rng(4242);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> syndromes;
    size_t guard = 0;
    while (syndromes.size() < 180 && ++guard < 2000000) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() >= 1)
            syndromes.push_back(dets.onesIndices());
    }
    ASSERT_GE(syndromes.size(), 100u);
    // Force give-up shots into the mix (HW 12 > Astrea's max of 10;
    // Astrea-G routes them through its pipeline instead).
    std::vector<uint32_t> heavy;
    for (uint32_t i = 0; i < 12; i++)
        heavy.push_back(i);
    syndromes.push_back(heavy);
    syndromes.push_back(heavy);

    SyndromeBatch batch;
    for (const auto &s : syndromes)
        batch.add(s);

    for (const std::string &name :
         {std::string("astrea"), std::string("astrea-g")}) {
        SCOPED_TRACE(name);
        auto dec = makeDecoder(name, opts);
        std::vector<DecodeResult> results;
        DecodeScratch scratch;
        for (int pass = 0; pass < 2; pass++)
            dec->decodeBatch(batch, results, scratch);
        const uint64_t before = allocCount();
        dec->decodeBatch(batch, results, scratch);
        const uint64_t allocs = allocCount() - before;
        EXPECT_EQ(allocs, 0u)
            << name << " decodeBatch allocated " << allocs
            << " times across " << batch.size()
            << " steady-state batched decodes";
    }
}

TEST(AllocCounter, TracedDecodeIsAllocationFree)
{
    // The tail-tracing hot path must stay allocation-free even in its
    // worst case: tracing enabled, every span recorded, and every
    // decode retained (stride 1 forces a TraceStore publish per shot,
    // i.e. ring slot + exemplar-table updates on top of the buffered
    // spans).
    telemetry::TraceStore::global().configure(256);
    telemetry::TraceRetentionConfig tc;
    tc.enabled = true;
    tc.tailThresholdNs = 1.0;
    tc.headStride = 1;
    telemetry::setTraceRetention(tc);

    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    DecoderOptions opts = decoderOptionsFor(ctx);

    Rng rng(123);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> syndromes;
    size_t guard = 0;
    while (syndromes.size() < 200 && ++guard < 2000000) {
        ctx.sampler().sample(rng, dets, obs);
        const size_t hw = dets.popcount();
        if (hw >= 1 && hw <= 10)
            syndromes.push_back(dets.onesIndices());
    }
    ASSERT_GE(syndromes.size(), 100u);

    auto dec = makeDecoder("astrea", opts);
    DecodeResult dr;
    DecodeScratch scratch;
    telemetry::DecodeTracer &tracer = telemetry::decodeTracer();

    auto pass = [&](uint64_t base_shot) {
        tracer.beginBatch(0, base_shot, "astrea", 42);
        ASSERT_TRUE(tracer.active());
        for (uint32_t i = 0; i < syndromes.size(); i++) {
            telemetry::traceShotBegin(i);
            dec->decodeInto(syndromes[i], dr, scratch);
            telemetry::TraceShotOutcome out;
            out.latencyNs = dr.latencyNs;
            out.cycles = dr.cycles;
            out.matchingWeight = dr.matchingWeight;
            out.obsMask = dr.obsMask;
            out.gaveUp = dr.gaveUp;
            out.defects = syndromes[i].data();
            out.hw = static_cast<uint32_t>(syndromes[i].size());
            tracer.finishShot(i, out);
        }
        tracer.endBatch();
    };

    // Warm-up settles decoder buffers and the trace ring, then the
    // measured pass must not touch the heap at all.
    pass(0);
    pass(1000);
    const uint64_t before = allocCount();
    pass(2000);
    const uint64_t allocs = allocCount() - before;
    EXPECT_EQ(allocs, 0u)
        << "traced decode allocated " << allocs << " times across "
        << syndromes.size() << " retained decodes";
    EXPECT_GE(telemetry::TraceStore::global().counters().kept,
              3 * static_cast<uint64_t>(syndromes.size()));

    telemetry::TraceRetentionConfig off;
    off.enabled = false;
    telemetry::setTraceRetention(off);
}

TEST(AllocCounter, AuditEnqueueIsAllocationFree)
{
    // The auditor's hot-path hook: offer() must not allocate, whether
    // it rejects by stride, drops on a full queue, or enqueues — the
    // queue's storage is all preallocated at construction.
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);

    Rng rng(7);
    BitVec dets, obs;
    std::vector<std::vector<uint32_t>> syndromes;
    size_t guard = 0;
    while (syndromes.size() < 200 && ++guard < 2000000) {
        ctx.sampler().sample(rng, dets, obs);
        if (dets.popcount() >= 1)
            syndromes.push_back(dets.onesIndices());
    }
    ASSERT_GE(syndromes.size(), 100u);

    AuditConfig acfg;
    acfg.sampleRate = 1.0;
    acfg.queueCapacity = 1024;  // Roomy: every offer enqueues.
    AccuracyAuditor auditor(ctx.gwt(), acfg);

    DecodeResult dr;
    dr.obsMask = 0;
    dr.matchingWeight = 1.0;

    // Warm-up pass, then measure (enqueue-only; the pool is not
    // running, so this isolates the producer side).
    for (const auto &s : syndromes)
        auditor.offer(0, 0, s, dr, 0);
    const uint64_t before = allocCount();
    for (const auto &s : syndromes)
        auditor.offer(1, 0, s, dr, 0);
    const uint64_t allocs = allocCount() - before;
    EXPECT_EQ(allocs, 0u)
        << "audit enqueue allocated " << allocs << " times across "
        << syndromes.size() << " offers";
}

TEST(AllocCounter, ThreadPoolRawEnqueueIsAllocationFree)
{
    // enqueueRaw() must hand work to the pool without constructing a
    // std::function or touching the heap; enqueue() (the
    // std::function path) is allowed to allocate, which is exactly
    // why the raw path exists.
    ThreadPool pool(2);
    pool.reserveRawSlots(256);

    std::atomic<uint64_t> ran{0};
    auto bump = [](void *arg) {
        static_cast<std::atomic<uint64_t> *>(arg)->fetch_add(
            1, std::memory_order_relaxed);
    };

    // Warm-up: settle any lazy one-time state in the pool/OS.
    for (int i = 0; i < 64; i++) {
        while (!pool.enqueueRaw(bump, &ran))
            std::this_thread::yield();
    }
    while (ran.load() < 64)
        std::this_thread::yield();

    const uint64_t before = allocCount();
    for (int i = 0; i < 200; i++) {
        while (!pool.enqueueRaw(bump, &ran))
            std::this_thread::yield();
    }
    const uint64_t allocs = allocCount() - before;
    EXPECT_EQ(allocs, 0u)
        << "enqueueRaw allocated " << allocs << " times across 200 "
        << "steady-state submissions";

    while (ran.load() < 264)
        std::this_thread::yield();
    pool.shutdown();
    EXPECT_EQ(ran.load(), 264u);
}

TEST(AllocCounter, FleetIngestToDecodePathIsAllocationFree)
{
    // The full wire-to-verdict hot path, driven synchronously the way
    // a reader thread + shard worker would: accumulate frame bytes,
    // parse, decode the codec payload, build a job, submit through
    // the shedding ramp, pump the shard through decodeBatch. After
    // warm-up, none of it may touch the allocator.
    ExperimentConfig ecfg;
    ecfg.distance = 5;
    ecfg.physicalErrorRate = 1e-3;
    auto ctx = std::make_shared<const ExperimentContext>(ecfg);

    FleetConfig fc;
    fc.shards = 1;
    fc.ringCapacity = 512;
    fc.maxBatch = 32;
    fc.maxDelayNs = 0;  // Every pump flushes: exercises decode too.
    DecodeFleet fleet(fc, ctx, registryFactory("astrea"));
    uint64_t fake_now = 1;
    fleet.setNowFunction([&fake_now] { return fake_now; });
    std::atomic<uint64_t> verdicts{0};
    fleet.setVerdictSink(
        [&verdicts](const FleetVerdict &) { verdicts++; });

    // Pre-encode wire frames for sampled syndromes (client side; the
    // measured region is the server side).
    const uint32_t bits = fleet.numDetectorBits();
    Rng rng(31);
    BitVec dets, obs;
    std::vector<std::vector<uint8_t>> wire_frames;
    std::vector<uint8_t> codec_buf;
    size_t guard = 0;
    uint32_t seq = 0;
    while (wire_frames.size() < 128 && ++guard < 2000000) {
        ctx->sampler().sample(rng, dets, obs);
        const size_t hw = dets.popcount();
        if (hw < 1 || hw > 10)
            continue;
        codec_buf.clear();
        encodeSyndromeInto(dets, SyndromeCodec::Sparse, codec_buf);
        std::vector<uint8_t> frame;
        net::appendFleetSyndrome(frame, seq % 16, seq, 7,
                                 codec_buf.data(), codec_buf.size());
        wire_frames.push_back(std::move(frame));
        seq++;
    }
    ASSERT_GE(wire_frames.size(), 64u);

    // Reused server-side state, exactly like net::FleetServer's
    // per-connection buffers.
    net::FleetFrameBuffer frames;
    BitVec syndrome;
    std::vector<uint32_t> defects;
    defects.reserve(kFleetMaxDefects);

    auto ingest_all = [&] {
        for (const auto &f : wire_frames) {
            fake_now++;
            frames.append(f.data(), f.size());
            net::FleetFrameHeader h;
            const uint8_t *payload = nullptr;
            ASSERT_EQ(frames.next(h, payload), net::FleetParse::Ok);
            ASSERT_TRUE(tryDecodeSyndromeInto(
                payload + 1, h.payloadLen - 1u, bits, syndrome));
            syndrome.onesIndicesInto(defects);
            FleetJob job;
            job.streamId = h.streamId;
            job.seq = h.seq;
            job.priority = payload[0];
            job.hw = static_cast<uint16_t>(defects.size());
            for (size_t i = 0; i < defects.size(); i++)
                job.defects[i] = defects[i];
            ASSERT_EQ(fleet.submit(job), FleetSubmit::Enqueued);
            fleet.pumpShard(0, fake_now);
        }
        fleet.flushShard(0, fake_now);
    };

    // Two warm-up passes settle every reused buffer (frame
    // accumulator, codec BitVec, SyndromeBatch, decoder scratch).
    ingest_all();
    ingest_all();
    const uint64_t before = allocCount();
    ingest_all();
    const uint64_t allocs = allocCount() - before;
    EXPECT_EQ(allocs, 0u)
        << "fleet ingest->decode allocated " << allocs
        << " times across " << wire_frames.size()
        << " steady-state shots";
    EXPECT_EQ(verdicts.load(), 3 * wire_frames.size());
    EXPECT_EQ(fleet.decodedTotal(), 3 * wire_frames.size());
}

} // namespace
} // namespace astrea
