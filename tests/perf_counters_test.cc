/**
 * @file
 * Tests for the hardware perf-counter attribution layer
 * (telemetry/perf_counters.hh). A PMU is not assumed: the derived
 * metrics, export surfaces and the forced-unavailable degradation are
 * all pinned by feeding synthetic deltas through addPerfSample(); the
 * one test that actually opens a counter group accepts either outcome
 * and only checks the availability state is coherent.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "telemetry/json.hh"
#include "telemetry/json_value.hh"
#include "telemetry/metrics.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/prometheus.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

/** Restores the perf layer (env, switch, totals) around each test. */
class PerfCountersTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        unsetenv("ASTREA_PERF_COUNTERS");
        unsetenv("ASTREA_PERF_STAGE_STRIDE");
        unsetenv("ASTREA_PERF_FORCE_UNAVAILABLE");
        resetPerfForTest();
    }

    void TearDown() override
    {
        unsetenv("ASTREA_PERF_COUNTERS");
        unsetenv("ASTREA_PERF_STAGE_STRIDE");
        unsetenv("ASTREA_PERF_FORCE_UNAVAILABLE");
        setPerfCountersEnabled(false);
        resetPerfForTest();
    }

    static PerfReading synthetic()
    {
        PerfReading r;
        r.cycles = 1000;
        r.instructions = 2500;
        r.llcLoads = 200;
        r.llcMisses = 10;
        r.branchMisses = 5;
        r.taskClockNs = 400;
        return r;
    }
};

TEST_F(PerfCountersTest, StageNamesAreStable)
{
    EXPECT_STREQ(perfStageName(PerfStage::Gather), "gather");
    EXPECT_STREQ(perfStageName(PerfStage::Matching), "matching");
    EXPECT_STREQ(perfStageName(PerfStage::Verdict), "verdict");
    EXPECT_STREQ(perfStageName(PerfStage::Window), "window");
    EXPECT_STREQ(perfStageName(PerfStage::Batch), "batch");
}

TEST_F(PerfCountersTest, AddSampleAccumulatesAndDerives)
{
    addPerfSample(PerfStage::Matching, synthetic(), 64);
    addPerfSample(PerfStage::Matching, synthetic(), 64);

    PerfStageTotals t = perfStageTotals(PerfStage::Matching);
    EXPECT_EQ(t.sections, 2u);
    EXPECT_EQ(t.shots, 128u);
    EXPECT_EQ(t.cycles, 2000u);
    EXPECT_EQ(t.instructions, 5000u);
    EXPECT_DOUBLE_EQ(t.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(t.llcMissRate(), 0.05);
    EXPECT_DOUBLE_EQ(t.cyclesPerShot(), 2000.0 / 128.0);
    EXPECT_DOUBLE_EQ(t.branchMissesPerKiloInsn(), 2.0);

    // Other stages are untouched.
    EXPECT_EQ(perfStageTotals(PerfStage::Gather).sections, 0u);
}

TEST_F(PerfCountersTest, ZeroShotSectionsAccrueCyclesNotShots)
{
    // Secondary sections of the same decode pass shots = 0 so the
    // stage's cycles include them but cycles/shot is not diluted.
    addPerfSample(PerfStage::Gather, synthetic(), 64);
    addPerfSample(PerfStage::Gather, synthetic(), 0);
    PerfStageTotals t = perfStageTotals(PerfStage::Gather);
    EXPECT_EQ(t.shots, 64u);
    EXPECT_EQ(t.cycles, 2000u);
}

TEST_F(PerfCountersTest, DerivedRatiosAreZeroWhenUnmeasured)
{
    PerfStageTotals t = perfStageTotals(PerfStage::Verdict);
    EXPECT_DOUBLE_EQ(t.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(t.llcMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(t.cyclesPerShot(), 0.0);
    EXPECT_DOUBLE_EQ(t.branchMissesPerKiloInsn(), 0.0);
}

TEST_F(PerfCountersTest, ResetZeroesEveryStage)
{
    addPerfSample(PerfStage::Batch, synthetic(), 10);
    resetPerfTotals();
    EXPECT_EQ(perfStageTotals(PerfStage::Batch).sections, 0u);
}

TEST_F(PerfCountersTest, SamplingGateHonorsMasterSwitch)
{
    setPerfCountersEnabled(false);
    for (int i = 0; i < 200; i++)
        EXPECT_FALSE(perfSampleThisDecode());
}

TEST_F(PerfCountersTest, StrideReadFromEnvironment)
{
    setenv("ASTREA_PERF_STAGE_STRIDE", "17", 1);
    resetPerfForTest();
    EXPECT_EQ(perfStageStride(), 17u);
}

TEST_F(PerfCountersTest, ForcedUnavailableLatchesWithReason)
{
    setenv("ASTREA_PERF_FORCE_UNAVAILABLE", "1", 1);
    resetPerfForTest();
    setPerfCountersEnabled(true);

    // Live sections become no-ops; nothing accumulates.
    {
        PerfSection sec(PerfStage::Batch, 100, true);
        EXPECT_FALSE(sec.live());
    }
    EXPECT_FALSE(perfCountersAvailable());
    EXPECT_NE(std::string(perfUnavailableReason()), "");
    EXPECT_EQ(perfStageTotals(PerfStage::Batch).sections, 0u);
}

TEST_F(PerfCountersTest, OpenEitherSucceedsOrLatchesCoherently)
{
    // Environment-tolerant: containers without a PMU (or with
    // perf_event_paranoid lockdown) must latch unavailable with a
    // reason; capable hosts must measure something.
    setPerfCountersEnabled(true);
    {
        PerfSection sec(PerfStage::Batch, 1, true);
        for (volatile int i = 0; i < 10000; i++) {
        }
    }
    if (perfCountersAvailable()) {
        PerfStageTotals t = perfStageTotals(PerfStage::Batch);
        EXPECT_EQ(t.sections, 1u);
        EXPECT_GT(t.cycles + t.instructions + t.taskClockNs, 0u);
    } else {
        EXPECT_NE(std::string(perfUnavailableReason()), "");
        EXPECT_EQ(perfStageTotals(PerfStage::Batch).sections, 0u);
    }
}

TEST_F(PerfCountersTest, DisabledSectionsAreInert)
{
    setPerfCountersEnabled(false);
    {
        PerfSection sec(PerfStage::Matching, 50, true);
        EXPECT_FALSE(sec.live());
    }
    EXPECT_EQ(perfStageTotals(PerfStage::Matching).sections, 0u);
}

TEST_F(PerfCountersTest, JsonShapeWhenUnavailable)
{
    setenv("ASTREA_PERF_FORCE_UNAVAILABLE", "1", 1);
    resetPerfForTest();
    setPerfCountersEnabled(true);
    { PerfSection sec(PerfStage::Batch, 1, true); }

    JsonWriter w;
    appendPerfJson(w);
    JsonValue doc;
    ASSERT_TRUE(parseJson(w.str(), doc));
    EXPECT_TRUE(doc["counters_enabled"].asBool());
    EXPECT_FALSE(doc["available"].asBool(true));
    EXPECT_NE(doc["reason"].asString(), "");
    EXPECT_EQ(doc["stage_stride"].asUint(), perfStageStride());
    EXPECT_TRUE(doc.has("stages"));
    EXPECT_FALSE(doc.has("ipc"));
}

TEST_F(PerfCountersTest, JsonShapeWithSyntheticTotals)
{
    // Derived headline/stage entries are keyed off availability, so
    // this only checks the stages map carries the raw totals.
    addPerfSample(PerfStage::Matching, synthetic(), 64);

    JsonWriter w;
    appendPerfJson(w);
    JsonValue doc;
    ASSERT_TRUE(parseJson(w.str(), doc));
    ASSERT_TRUE(doc["stages"].has("matching"));
    const JsonValue &m = doc["stages"]["matching"];
    EXPECT_EQ(m["sections"].asUint(), 1u);
    EXPECT_EQ(m["shots"].asUint(), 64u);
    EXPECT_EQ(m["cycles"].asUint(), 1000u);
    EXPECT_DOUBLE_EQ(m["ipc"].asNumber(), 2.5);
}

TEST_F(PerfCountersTest, PrometheusAlwaysExportsAvailability)
{
    setenv("ASTREA_PERF_FORCE_UNAVAILABLE", "1", 1);
    resetPerfForTest();
    setPerfCountersEnabled(true);

    PrometheusWriter w;
    writePerfPrometheus(w);
    const std::string &text = w.str();
    EXPECT_NE(text.find("astrea_perf_available 0"), std::string::npos);
    // No per-stage families without real counters.
    EXPECT_EQ(text.find("astrea_perf_cycles_total"),
              std::string::npos);
    EXPECT_EQ(text.find("astrea_perf_ipc"), std::string::npos);
}

TEST_F(PerfCountersTest, PublishGaugesIntoRegistry)
{
    addPerfSample(PerfStage::Matching, synthetic(), 64);

    MetricsRegistry reg;
    publishPerfMetrics(reg);
    auto gauges = reg.gaugeValues();
    ASSERT_TRUE(gauges.count("perf.available"));
    ASSERT_TRUE(gauges.count("perf.matching.ipc_milli"));
    EXPECT_EQ(gauges["perf.matching.ipc_milli"], 2500);
    ASSERT_TRUE(gauges.count("perf.matching.llc_miss_rate_ppm"));
    EXPECT_EQ(gauges["perf.matching.llc_miss_rate_ppm"], 50000);
    // Stages with no sections are not published.
    EXPECT_FALSE(gauges.count("perf.window.ipc_milli"));
}

} // namespace
