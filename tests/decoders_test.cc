/**
 * @file
 * Tests for the baseline decoders: software MWPM, Union-Find, Clique,
 * and the LUT decoder.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/clique_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "harness/memory_experiment.hh"
#include "matching/dp_matcher.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
d5Context()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = 3e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

std::vector<uint32_t>
sampleDefects(const ExperimentContext &ctx, Rng &rng, BitVec &dets,
              BitVec &obs)
{
    ctx.sampler().sample(rng, dets, obs);
    return dets.onesIndices();
}

// --------------------------------------------------------------- MWPM

TEST(MwpmDecoder, EmptySyndrome)
{
    MwpmDecoder dec(d5Context().gwt());
    DecodeResult r = dec.decode({});
    EXPECT_EQ(r.obsMask, 0u);
    EXPECT_FALSE(r.gaveUp);
}

TEST(MwpmDecoder, SingleDefectMatchesBoundary)
{
    const auto &gwt = d5Context().gwt();
    MwpmDecoder dec(gwt);
    DecodeResult r = dec.decode({3});
    EXPECT_EQ(r.obsMask, gwt.pairObs(3, 3));
    EXPECT_NEAR(r.matchingWeight, gwt.exactWeight(3, 3), 1e-9);
}

TEST(MwpmDecoder, TotalWeightEqualsDpOptimum)
{
    const auto &ctx = d5Context();
    const auto &gwt = ctx.gwt();
    MwpmDecoder dec(gwt);
    Rng rng(31);
    BitVec dets, obs;
    int checked = 0;
    while (checked < 50) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        if (defects.empty() || defects.size() > 14)
            continue;
        checked++;
        DecodeResult r = dec.decode(defects);
        MatchingSolution dp = dpMatchWithBoundary(
            static_cast<int>(defects.size()),
            [&](int i, int j) {
                return gwt.exactWeight(defects[i], defects[j]);
            },
            [&](int i) {
                return gwt.exactWeight(defects[i], defects[i]);
            });
        EXPECT_NEAR(r.matchingWeight, dp.totalWeight, 1e-3);
    }
}

TEST(MwpmDecoder, ReportsWallClockLatency)
{
    MwpmDecoder dec(d5Context().gwt());
    DecodeResult r = dec.decode({0, 5, 9, 20});
    EXPECT_GT(r.latencyNs, 0.0);
    EXPECT_EQ(r.cycles, 0u);
}

// ----------------------------------------------------------- UnionFind

TEST(UnionFind, EmptySyndrome)
{
    UnionFindDecoder dec(d5Context().graph());
    DecodeResult r = dec.decode({});
    EXPECT_EQ(r.obsMask, 0u);
}

TEST(UnionFind, NeverCrashesOnRandomShots)
{
    const auto &ctx = d5Context();
    UnionFindDecoder dec(ctx.graph());
    Rng rng(41);
    BitVec dets, obs;
    for (int s = 0; s < 5000; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        DecodeResult r = dec.decode(defects);
        EXPECT_FALSE(r.gaveUp);
    }
}

TEST(UnionFind, AccuracyBetweenRandomAndMwpm)
{
    // UF must beat "no correction" but may trail MWPM.
    const auto &ctx = d5Context();
    UnionFindDecoder uf(ctx.graph());
    MwpmDecoder mwpm(ctx.gwt());
    Rng rng(43);
    BitVec dets, obs;
    int shots = 20000;
    int uf_err = 0, mwpm_err = 0, none_err = 0;
    for (int s = 0; s < shots; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        uint64_t actual = obs.none() ? 0u : 1u;
        if (uf.decode(defects).obsMask != actual)
            uf_err++;
        if (mwpm.decode(defects).obsMask != actual)
            mwpm_err++;
        if (actual != 0)
            none_err++;
    }
    EXPECT_LT(uf_err, none_err);         // Better than doing nothing.
    EXPECT_LE(mwpm_err, uf_err + 5);     // MWPM at least as good.
    EXPECT_GT(uf_err, 0);                // Not magically perfect.
}

TEST(UnionFind, SingleDefectProducesBoundaryCorrection)
{
    // A lone defect adjacent to the boundary must resolve through it.
    const auto &ctx = d5Context();
    const auto &graph = ctx.graph();
    // Find a detector with a boundary edge.
    uint32_t node = 0;
    bool found = false;
    for (uint32_t v = 0; v < graph.numNodes() && !found; v++) {
        if (graph.boundaryEdge(v) >= 0) {
            node = v;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    UnionFindDecoder dec(graph);
    DecodeResult r = dec.decode({node});
    // The correction weight must be positive (some edges chosen).
    EXPECT_GT(r.matchingWeight, 0.0);
}

TEST(UnionFind, WeightedGrowthDecodesEverything)
{
    const auto &ctx = d5Context();
    UnionFindDecoder dec(ctx.graph(), UnionFindConfig{true});
    EXPECT_EQ(dec.name(), "UF-weighted");
    Rng rng(61);
    BitVec dets, obs;
    for (int s = 0; s < 3000; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        DecodeResult r = dec.decode(defects);
        EXPECT_FALSE(r.gaveUp);
    }
}

TEST(UnionFind, WeightedGrowthAtLeastAsAccurate)
{
    // Weighted growth expands along likely chains first; it should not
    // be meaningfully worse than unweighted growth.
    const auto &ctx = d5Context();
    const uint64_t shots = 60000;
    auto unweighted =
        runMemoryExperiment(ctx, unionFindFactory(), shots, 67);
    auto weighted = runMemoryExperiment(
        ctx, unionFindFactory(UnionFindConfig{true}), shots, 67);
    ASSERT_GT(unweighted.logicalErrors.successes, 20u);
    EXPECT_LE(weighted.logicalErrors.successes,
              unweighted.logicalErrors.successes * 13 / 10);
}

// -------------------------------------------------------------- Clique

TEST(Clique, EmptySyndromeIsLocal)
{
    const auto &ctx = d5Context();
    CliqueDecoder dec(ctx.graph(), ctx.gwt());
    dec.decode({});
    EXPECT_DOUBLE_EQ(dec.localFraction(), 1.0);
}

TEST(Clique, IsolatedPairHandledLocally)
{
    // Take any edge between two detectors; with only those two defects
    // set, the local stage should commit them without MWPM fallback.
    const auto &ctx = d5Context();
    const auto &graph = ctx.graph();
    const GraphEdge *edge = nullptr;
    for (const auto &e : graph.edges()) {
        if (e.v != kBoundaryNode) {
            edge = &e;
            break;
        }
    }
    ASSERT_NE(edge, nullptr);
    CliqueDecoder dec(ctx.graph(), ctx.gwt());
    std::vector<uint32_t> defects{std::min(edge->u, edge->v),
                                  std::max(edge->u, edge->v)};
    DecodeResult r = dec.decode(defects);
    EXPECT_EQ(r.cycles, 1u);  // Fast path.
    EXPECT_DOUBLE_EQ(dec.localFraction(), 1.0);
    EXPECT_EQ(r.obsMask, edge->obsMask);
}

TEST(Clique, AccuracyCloseToMwpm)
{
    const auto &ctx = d5Context();
    CliqueDecoder clique(ctx.graph(), ctx.gwt());
    MwpmDecoder mwpm(ctx.gwt());
    Rng rng(47);
    BitVec dets, obs;
    int shots = 20000;
    int clique_err = 0, mwpm_err = 0;
    for (int s = 0; s < shots; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        uint64_t actual = obs.none() ? 0u : 1u;
        if (clique.decode(defects).obsMask != actual)
            clique_err++;
        if (mwpm.decode(defects).obsMask != actual)
            mwpm_err++;
    }
    EXPECT_GE(clique_err, mwpm_err - 5);
    // Within an order of magnitude of MWPM (paper: up to ~10x worse).
    EXPECT_LT(clique_err, 20 * std::max(mwpm_err, 5));
}

TEST(Clique, FallbackLatencyIncludesRoundTrip)
{
    // A dense defect blob cannot be all-local; the fallback charges
    // the 1 us transport penalty.
    const auto &ctx = d5Context();
    CliqueDecoder dec(ctx.graph(), ctx.gwt());
    Rng rng(53);
    BitVec dets, obs;
    for (int s = 0; s < 20000; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        DecodeResult r = dec.decode(defects);
        if (dec.localFraction() < 1.0) {
            EXPECT_GT(r.latencyNs, 1000.0);
            return;
        }
    }
    FAIL() << "no fallback case sampled";
}

// ----------------------------------------------------------------- LUT

TEST(Lut, MatchesMwpmAlways)
{
    const auto &ctx = d5Context();
    LutDecoder lut(ctx.gwt());
    MwpmDecoder mwpm(ctx.gwt());
    Rng rng(59);
    BitVec dets, obs;
    for (int s = 0; s < 3000; s++) {
        auto defects = sampleDefects(ctx, rng, dets, obs);
        EXPECT_EQ(lut.decode(defects).obsMask,
                  mwpm.decode(defects).obsMask);
    }
}

TEST(Lut, MemoizesEntries)
{
    const auto &ctx = d5Context();
    LutDecoder lut(ctx.gwt());
    EXPECT_EQ(lut.populatedEntries(), 0u);
    lut.decode({1, 2});
    EXPECT_EQ(lut.populatedEntries(), 1u);
    lut.decode({1, 2});
    EXPECT_EQ(lut.populatedEntries(), 1u);
    lut.decode({1, 3});
    EXPECT_EQ(lut.populatedEntries(), 2u);
}

TEST(Lut, ConstantOneAccessLatency)
{
    LutDecoder lut(d5Context().gwt());
    DecodeResult r = lut.decode({0, 1});
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_DOUBLE_EQ(r.latencyNs, 4.0);
}

TEST(Lut, HardwareFeasibilityThreshold)
{
    // d = 3 (16-bit syndromes) is implementable; d = 5 with 5 rounds
    // (72-bit) and d = 7 (192-bit) are not (paper Sec. 5.6).
    ExperimentConfig c3;
    c3.distance = 3;
    c3.physicalErrorRate = 1e-3;
    ExperimentContext ctx3(c3);
    LutDecoder lut3(ctx3.gwt());
    EXPECT_TRUE(lut3.hardwareFeasible());
    EXPECT_EQ(lut3.fullTableAddressBits(), 16u);

    LutDecoder lut5(d5Context().gwt());
    EXPECT_FALSE(lut5.hardwareFeasible());
    EXPECT_EQ(lut5.fullTableAddressBits(), 72u);
}

} // namespace
} // namespace astrea
