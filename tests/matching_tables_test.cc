/**
 * @file
 * Tests for the precomputed flattened perfect-matching tables.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "astrea/matching_tables.hh"
#include "matching/enumerator.hh"

namespace astrea
{
namespace
{

class MatchingTableTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MatchingTableTest, MatchesEnumeratorRowForRow)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);

    EXPECT_EQ(table.nodes(), m);
    EXPECT_EQ(table.pairsPerRow(), m / 2);
    EXPECT_EQ(table.rows(), perfectMatchingCount(m));
    EXPECT_EQ(table.rowsPadded() % MatchingTable::kRowPadding, 0u);
    EXPECT_GE(table.rowsPadded(), table.rows());
    EXPECT_LT(table.rowsPadded(),
              table.rows() + MatchingTable::kRowPadding);

    // The flattened rows reproduce the canonical enumerator exactly,
    // in order.
    uint32_t row = 0;
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        ASSERT_LT(row, table.rows());
        for (int k = 0; k < table.pairsPerRow(); k++) {
            auto [i, j] = table.pairAt(row, k);
            EXPECT_EQ(std::make_pair(i, j), pl[k])
                << "row " << row << " slot " << k;
        }
        row++;
    });
    EXPECT_EQ(row, table.rows());
}

TEST_P(MatchingTableTest, SlotOffsetsAddressUpperTriangle)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);

    for (int k = 0; k < table.pairsPerRow(); k++) {
        const int32_t *off = table.slotOffsets(k);
        for (uint32_t r = 0; r < table.rows(); r++) {
            auto [i, j] = table.pairAt(r, k);
            EXPECT_EQ(off[r], i * m + j);
        }
        // The padding tail resolves to the (0, 0) diagonal, which the
        // kernel tile contract keeps infinite.
        for (uint32_t r = table.rows(); r < table.rowsPadded(); r++)
            EXPECT_EQ(off[r], 0);
    }
}

TEST_P(MatchingTableTest, RowsAreValidPerfectMatchings)
{
    const int m = GetParam();
    const MatchingTable &table = MatchingTable::forNodes(m);

    std::set<std::vector<std::pair<int, int>>> seen;
    for (uint32_t r = 0; r < table.rows(); r++) {
        std::set<int> used;
        std::vector<std::pair<int, int>> row;
        for (int k = 0; k < table.pairsPerRow(); k++) {
            auto [i, j] = table.pairAt(r, k);
            EXPECT_LT(i, j);
            EXPECT_TRUE(used.insert(i).second);
            EXPECT_TRUE(used.insert(j).second);
            row.push_back({i, j});
        }
        EXPECT_EQ(used.size(), static_cast<size_t>(m));
        EXPECT_TRUE(seen.insert(row).second) << "duplicate row " << r;
    }
    EXPECT_EQ(seen.size(), table.rows());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatchingTableTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(MatchingTable, SameInstanceOnEveryLookup)
{
    EXPECT_EQ(&MatchingTable::forNodes(6), &MatchingTable::forNodes(6));
}

TEST(MatchingTable, RejectsUnsupportedSizes)
{
    EXPECT_DEATH(MatchingTable::forNodes(5), "matching tables");
    EXPECT_DEATH(MatchingTable::forNodes(12), "matching tables");
    EXPECT_DEATH(MatchingTable::forNodes(0), "matching tables");
}

} // namespace
} // namespace astrea
