/**
 * @file
 * Unit tests for the Pauli-frame simulator: gate propagation rules,
 * detector evaluation, single-fault injection, and multi-fault
 * linearity (the XOR property the DEM relies on).
 */

#include <gtest/gtest.h>

#include "circuit/builder.hh"
#include "sim/frame_sim.hh"

namespace astrea
{
namespace
{

/** Build: X_ERROR(p) on q0, CX(0 -> 1), measure both, detect each. */
Circuit
cxProbe(double p)
{
    CircuitBuilder b(2);
    b.reset({0, 1});
    b.xError(p, {0});
    b.cx({0, 1});
    auto m = b.measure({0, 1});
    b.detector({m[0]}, DetectorInfo{});
    b.detector({m[1]}, DetectorInfo{});
    b.observable(0, {m[1]});
    return b.build();
}

TEST(FrameSim, CxPropagatesXToTarget)
{
    Circuit c = cxProbe(1.0);  // X fires deterministically.
    FrameSimulator sim(c);
    Rng rng(1);
    BitVec dets, obs;
    sim.sample(rng, dets, obs);
    EXPECT_TRUE(dets.get(0));
    EXPECT_TRUE(dets.get(1));  // X propagated through the CX.
    EXPECT_TRUE(obs.get(0));
}

TEST(FrameSim, NoErrorNoDetection)
{
    Circuit c = cxProbe(0.0);
    FrameSimulator sim(c);
    Rng rng(1);
    BitVec dets, obs;
    sim.sample(rng, dets, obs);
    EXPECT_TRUE(dets.none());
    EXPECT_TRUE(obs.none());
}

TEST(FrameSim, ZErrorInvisibleToZMeasurement)
{
    CircuitBuilder b(1);
    b.reset({0});
    b.xError(0.0, {0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    FrameSimulator sim(c);
    BitVec dets, obs;
    // A pure Z error cannot flip a Z-basis measurement.
    sim.propagateInjection(0, {{0, false, true}}, dets, obs);
    EXPECT_TRUE(dets.none());
}

TEST(FrameSim, HadamardSwapsXAndZ)
{
    // Z error, then H, then measure: the Z becomes an X and flips the
    // measurement.
    CircuitBuilder b(1);
    b.reset({0});
    b.hadamard({0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    FrameSimulator sim(c);
    BitVec dets, obs;
    // Inject Z after the reset (op 0), before the H.
    sim.propagateInjection(0, {{0, false, true}}, dets, obs);
    EXPECT_TRUE(dets.get(0));
    // Inject X after the H (op 1): H already passed, X flips M too.
    sim.propagateInjection(1, {{0, true, false}}, dets, obs);
    EXPECT_TRUE(dets.get(0));
    // Inject Z after the H: invisible.
    sim.propagateInjection(1, {{0, false, true}}, dets, obs);
    EXPECT_TRUE(dets.none());
}

TEST(FrameSim, CxBackPropagatesZToControl)
{
    // Z on target propagates Z onto control through CX; visible after
    // an H on the control.
    CircuitBuilder b(2);
    b.reset({0, 1});
    b.cx({0, 1});
    b.hadamard({0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    FrameSimulator sim(c);
    BitVec dets, obs;
    // Inject Z on qubit 1 after reset (op 0), before the CX (op 1).
    sim.propagateInjection(0, {{1, false, true}}, dets, obs);
    EXPECT_TRUE(dets.get(0));
}

TEST(FrameSim, ResetClearsFrame)
{
    CircuitBuilder b(1);
    b.reset({0});
    b.tick();
    b.reset({0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    FrameSimulator sim(c);
    BitVec dets, obs;
    // X injected before the second reset is wiped out.
    sim.propagateInjection(0, {{0, true, false}}, dets, obs);
    EXPECT_TRUE(dets.none());
    // X injected after the second reset flips the measurement.
    sim.propagateInjection(2, {{0, true, false}}, dets, obs);
    EXPECT_TRUE(dets.get(0));
}

TEST(FrameSim, MeasureResetRecordsThenClears)
{
    // MR then M: the MR sees the injected flip, the M after it does
    // not (the reset half of MR clears the frame).
    Circuit c(1);
    c.appendGate(GateType::R, {0});
    c.appendGate(GateType::XError, {0}, 0.0);
    c.appendGate(GateType::MR, {0});
    c.appendGate(GateType::M, {0});
    c.appendDetector({0}, DetectorInfo{});
    c.appendDetector({1}, DetectorInfo{});
    FrameSimulator sim(c);
    BitVec dets, obs;
    sim.propagateInjection(1, {{0, true, false}}, dets, obs);
    EXPECT_TRUE(dets.get(0));
    EXPECT_FALSE(dets.get(1));
}

TEST(FrameSim, DetectorParityOfTwoMeasurements)
{
    // Note: built on the raw Circuit API because the builder elides
    // zero-probability noise ops, which would shift injection indices.
    Circuit c(1);
    c.appendGate(GateType::R, {0});
    c.appendGate(GateType::XError, {0}, 0.0);
    c.appendGate(GateType::M, {0});
    c.appendGate(GateType::M, {0});
    c.appendDetector({0, 1}, DetectorInfo{});

    FrameSimulator sim(c);
    BitVec dets, obs;
    // Same flip seen by both measurements cancels in the comparison.
    sim.propagateInjection(1, {{0, true, false}}, dets, obs);
    EXPECT_TRUE(dets.none());
}

TEST(FrameSim, XErrorRateIsRespected)
{
    Circuit c = cxProbe(0.3);
    FrameSimulator sim(c);
    Rng rng(23);
    BitVec dets, obs;
    int fires = 0;
    const int shots = 20000;
    for (int s = 0; s < shots; s++) {
        sim.sample(rng, dets, obs);
        if (dets.get(0))
            fires++;
    }
    EXPECT_NEAR(fires / static_cast<double>(shots), 0.3, 0.02);
}

TEST(FrameSim, Depolarize1FiresAtRate)
{
    CircuitBuilder b(1);
    b.reset({0});
    b.depolarize1(0.3, {0});
    b.hadamard({0});  // Makes Z components visible half the time? No:
                      // H maps X->Z, Z->X; measure sees original Z and
                      // Y components. Use two probes instead.
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();
    FrameSimulator sim(c);
    Rng rng(29);
    BitVec dets, obs;
    int fires = 0;
    const int shots = 30000;
    for (int s = 0; s < shots; s++) {
        sim.sample(rng, dets, obs);
        if (dets.get(0))
            fires++;
    }
    // After H, the detector sees the error's Z or Y component: 2/3 of
    // firings.
    EXPECT_NEAR(fires / static_cast<double>(shots), 0.3 * 2.0 / 3.0,
                0.02);
}

TEST(FrameSim, Depolarize2MarginalRate)
{
    CircuitBuilder b(2);
    b.reset({0, 1});
    b.depolarize2(0.3, {0, 1});
    auto m = b.measure({0, 1});
    b.detector({m[0]}, DetectorInfo{});
    b.detector({m[1]}, DetectorInfo{});
    Circuit c = b.build();
    FrameSimulator sim(c);
    Rng rng(31);
    BitVec dets, obs;
    int fires0 = 0, fires1 = 0, both = 0;
    const int shots = 30000;
    for (int s = 0; s < shots; s++) {
        sim.sample(rng, dets, obs);
        if (dets.get(0))
            fires0++;
        if (dets.get(1))
            fires1++;
        if (dets.get(0) && dets.get(1))
            both++;
    }
    // Each qubit has an X or Y component in 8 of the 15 outcomes.
    double expect_single = 0.3 * 8.0 / 15.0;
    EXPECT_NEAR(fires0 / static_cast<double>(shots), expect_single, 0.02);
    EXPECT_NEAR(fires1 / static_cast<double>(shots), expect_single, 0.02);
    // Both flip in 4 of 15 outcomes ({X,Y} x {X,Y}).
    EXPECT_NEAR(both / static_cast<double>(shots), 0.3 * 4.0 / 15.0,
                0.02);
}

TEST(FrameSim, FaultSetLinearity)
{
    // Propagating {f1, f2} together must equal the XOR of propagating
    // each alone (frames are linear over GF(2)). Raw Circuit API keeps
    // the zero-probability anchor ops at indices 1 and 3.
    Circuit c(3);
    c.appendGate(GateType::R, {0, 1, 2});
    c.appendGate(GateType::XError, {0, 1, 2}, 0.0);
    c.appendGate(GateType::CX, {0, 1, 1, 2});
    c.appendGate(GateType::XError, {0, 1, 2}, 0.0);
    c.appendGate(GateType::M, {0, 1, 2});
    for (uint32_t mi : {0u, 1u, 2u})
        c.appendDetector({mi}, DetectorInfo{});
    c.appendObservable(0, {2});

    FrameSimulator sim(c);
    BitVec d1, d2, d12, o1, o2, o12;
    std::vector<PauliFlip> f1{{0, true, false}};
    std::vector<PauliFlip> f2{{1, true, true}};

    sim.propagateInjection(1, f1, d1, o1);
    sim.propagateInjection(3, f2, d2, o2);
    sim.propagateFaultSet({{1, f1}, {3, f2}}, d12, o12);

    d1 ^= d2;
    o1 ^= o2;
    EXPECT_TRUE(d12 == d1);
    EXPECT_TRUE(o12 == o1);
}

TEST(FrameSim, FaultSetMustBeSorted)
{
    Circuit c = cxProbe(0.0);
    FrameSimulator sim(c);
    BitVec dets, obs;
    std::vector<FrameSimulator::Fault> faults{
        {3, {{0, true, false}}}, {1, {{0, true, false}}}};
    EXPECT_DEATH(sim.propagateFaultSet(faults, dets, obs), "sorted");
}

} // namespace
} // namespace astrea
