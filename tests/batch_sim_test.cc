/**
 * @file
 * Tests for the bit-packed batch frame simulator: agreement with the
 * scalar frame simulator and the DEM sampler, deterministic channels,
 * and the per-shot extraction helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/memory_experiment.hh"
#include "sim/batch_frame_sim.hh"
#include "sim/frame_sim.hh"

namespace astrea
{
namespace
{

Circuit
memCircuit(uint32_t d, double p)
{
    SurfaceCodeLayout layout(d);
    MemoryExperimentSpec spec;
    spec.distance = d;
    spec.noise = NoiseModel::uniform(p);
    return buildMemoryCircuit(layout, spec);
}

TEST(BatchSim, NoiselessBatchIsAllZero)
{
    Circuit c = memCircuit(3, 0.0);
    BatchFrameSimulator sim(c);
    Rng rng(1);
    std::vector<uint64_t> dets, obs;
    sim.sampleBatch(rng, dets, obs);
    ASSERT_EQ(dets.size(), c.numDetectors());
    for (auto w : dets)
        EXPECT_EQ(w, 0u);
    for (auto w : obs)
        EXPECT_EQ(w, 0u);
}

TEST(BatchSim, DeterministicErrorFiresEveryShot)
{
    // X_ERROR(1.0) before a measured detector: every shot fires.
    CircuitBuilder b(1);
    b.reset({0});
    b.xError(1.0, {0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    BatchFrameSimulator sim(c);
    Rng rng(2);
    std::vector<uint64_t> dets, obs;
    sim.sampleBatch(rng, dets, obs);
    EXPECT_EQ(dets[0], ~0ull);
}

TEST(BatchSim, BernoulliRateAcrossShots)
{
    CircuitBuilder b(1);
    b.reset({0});
    b.xError(0.2, {0});
    auto m = b.measure({0});
    b.detector({m[0]}, DetectorInfo{});
    Circuit c = b.build();

    BatchFrameSimulator sim(c);
    Rng rng(3);
    std::vector<uint64_t> dets, obs;
    uint64_t fires = 0, shots = 0;
    for (int batch = 0; batch < 2000; batch++) {
        sim.sampleBatch(rng, dets, obs);
        fires += __builtin_popcountll(dets[0]);
        shots += 64;
    }
    EXPECT_NEAR(static_cast<double>(fires) / shots, 0.2, 0.01);
}

TEST(BatchSim, MatchesScalarSimulatorStatistics)
{
    Circuit c = memCircuit(3, 5e-3);
    BatchFrameSimulator batch(c);
    FrameSimulator scalar(c);

    const int batches = 800;  // 51200 shots.
    Rng rng_a(5), rng_b(6);

    std::vector<uint64_t> det_rate_batch(c.numDetectors(), 0);
    std::vector<uint64_t> det_rate_scalar(c.numDetectors(), 0);
    double hw_batch = 0, hw_scalar = 0;
    uint64_t obs_batch = 0, obs_scalar = 0;

    std::vector<uint64_t> dets, obs;
    for (int bi = 0; bi < batches; bi++) {
        batch.sampleBatch(rng_a, dets, obs);
        for (uint32_t d = 0; d < c.numDetectors(); d++) {
            det_rate_batch[d] += __builtin_popcountll(dets[d]);
            hw_batch += __builtin_popcountll(dets[d]);
        }
        obs_batch += __builtin_popcountll(obs[0]);
    }
    BitVec sd, so;
    const uint64_t scalar_shots = 64ull * batches;
    for (uint64_t s = 0; s < scalar_shots; s++) {
        scalar.sample(rng_b, sd, so);
        for (auto i : sd.onesIndices()) {
            det_rate_scalar[i]++;
            hw_scalar += 1;
        }
        if (!so.none())
            obs_scalar++;
    }

    const double shots = static_cast<double>(scalar_shots);
    EXPECT_NEAR(hw_batch / shots, hw_scalar / shots,
                0.05 * std::max(1.0, hw_scalar / shots));
    for (uint32_t d = 0; d < c.numDetectors(); d++) {
        EXPECT_NEAR(det_rate_batch[d] / shots,
                    det_rate_scalar[d] / shots, 0.01)
            << "detector " << d;
    }
    EXPECT_NEAR(obs_batch / shots, obs_scalar / shots, 0.01);
}

TEST(BatchSim, ShotExtractionHelpers)
{
    Circuit c = memCircuit(3, 2e-2);
    BatchFrameSimulator sim(c);
    Rng rng(7);
    std::vector<uint64_t> dets, obs;
    sim.sampleBatch(rng, dets, obs);
    for (uint32_t shot = 0; shot < 64; shot += 9) {
        auto defects = BatchFrameSimulator::shotDefects(dets, shot);
        EXPECT_EQ(defects.size(),
                  BatchFrameSimulator::shotWeight(dets, shot));
        for (auto d : defects)
            EXPECT_TRUE((dets[d] >> shot) & 1);
    }
}

TEST(BatchSim, ShotsWithinBatchAreIndependent)
{
    // Adjacent shots must not be correlated: measure the covariance of
    // detector 0 between shot 0 and shot 1 across many batches.
    Circuit c = memCircuit(3, 2e-2);
    BatchFrameSimulator sim(c);
    Rng rng(9);
    std::vector<uint64_t> dets, obs;
    int n = 4000, a = 0, b = 0, ab = 0;
    for (int i = 0; i < n; i++) {
        sim.sampleBatch(rng, dets, obs);
        int s0 = dets[0] & 1;
        int s1 = (dets[0] >> 1) & 1;
        a += s0;
        b += s1;
        ab += s0 & s1;
    }
    double pa = static_cast<double>(a) / n;
    double pb = static_cast<double>(b) / n;
    double pab = static_cast<double>(ab) / n;
    EXPECT_NEAR(pab, pa * pb, 0.01);
}

TEST(BatchSim, DecodableEndToEnd)
{
    // Batch-sampled shots feed the decoders just like scalar ones.
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 3e-3;
    ExperimentContext ctx(cfg);
    BatchFrameSimulator sim(ctx.circuit());
    auto decoder = mwpmFactory()(ctx);

    Rng rng(11);
    std::vector<uint64_t> dets, obs;
    uint64_t errors = 0, shots = 0;
    for (int bi = 0; bi < 400; bi++) {
        sim.sampleBatch(rng, dets, obs);
        for (uint32_t s = 0; s < 64; s++) {
            auto defects = BatchFrameSimulator::shotDefects(dets, s);
            DecodeResult dr = decoder->decode(defects);
            uint64_t actual = (obs[0] >> s) & 1;
            if (dr.obsMask != actual)
                errors++;
            shots++;
        }
    }
    // LER in the same ballpark as the DEM-sampler pipeline (~1e-2).
    double ler = static_cast<double>(errors) / shots;
    EXPECT_LT(ler, 0.05);
}

} // namespace
} // namespace astrea
