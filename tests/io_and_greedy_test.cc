/**
 * @file
 * Tests for Global Weight Table serialization and the greedy baseline
 * decoder.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "graph/weight_table_io.hh"
#include "harness/memory_experiment.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
sharedContext()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = 2e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

// ------------------------------------------------------------- GWT IO

TEST(WeightTableIo, RoundTripPreservesEverything)
{
    const auto &gwt = sharedContext().gwt();
    std::string path = tempPath("gwt_roundtrip.bin");
    saveWeightTable(gwt, path);
    GlobalWeightTable loaded = loadWeightTable(path);

    ASSERT_EQ(loaded.size(), gwt.size());
    for (uint32_t i = 0; i < gwt.size(); i += 3) {
        for (uint32_t j = 0; j < gwt.size(); j += 5) {
            EXPECT_EQ(loaded.pairWeight(i, j), gwt.pairWeight(i, j));
            EXPECT_EQ(loaded.pairObs(i, j), gwt.pairObs(i, j));
            EXPECT_DOUBLE_EQ(loaded.exactWeight(i, j),
                             gwt.exactWeight(i, j));
        }
    }
    std::remove(path.c_str());
}

TEST(WeightTableIo, LoadedTableDecodesIdentically)
{
    const auto &ctx = sharedContext();
    std::string path = tempPath("gwt_decode.bin");
    saveWeightTable(ctx.gwt(), path);
    GlobalWeightTable loaded = loadWeightTable(path);

    MwpmDecoder original(ctx.gwt());
    MwpmDecoder reloaded(loaded);
    Rng rng(3);
    BitVec dets, obs;
    for (int s = 0; s < 500; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        EXPECT_EQ(original.decode(defects).obsMask,
                  reloaded.decode(defects).obsMask);
    }
    std::remove(path.c_str());
}

TEST(WeightTableIo, RejectsMissingFile)
{
    EXPECT_EXIT(loadWeightTable("/nonexistent/path/gwt.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(WeightTableIo, RejectsGarbage)
{
    std::string path = tempPath("gwt_garbage.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("not a gwt image at all", 1, 22, f);
    std::fclose(f);
    EXPECT_EXIT(loadWeightTable(path), ::testing::ExitedWithCode(1),
                "not a GWT image");
    std::remove(path.c_str());
}

TEST(WeightTableIo, RejectsTruncated)
{
    const auto &gwt = sharedContext().gwt();
    std::string path = tempPath("gwt_truncated.bin");
    saveWeightTable(gwt, path);
    // Truncate to half.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    EXPECT_EXIT(loadWeightTable(path), ::testing::ExitedWithCode(1),
                "short read");
    std::remove(path.c_str());
}

// ------------------------------------------------------------- greedy

TEST(Greedy, EmptySyndrome)
{
    GreedyDecoder dec(sharedContext().gwt());
    DecodeResult r = dec.decode({});
    EXPECT_EQ(r.obsMask, 0u);
}

TEST(Greedy, SingleDefectGoesToBoundary)
{
    const auto &gwt = sharedContext().gwt();
    GreedyDecoder dec(gwt);
    DecodeResult r = dec.decode({5});
    EXPECT_EQ(r.obsMask, gwt.pairObs(5, 5));
    EXPECT_NEAR(r.matchingWeight, gwt.exactWeight(5, 5), 1e-9);
}

TEST(Greedy, MatchingCoversEveryDefect)
{
    // The greedy matching's total weight is always >= MWPM's, and it
    // resolves every defect (weight is finite).
    const auto &ctx = sharedContext();
    GreedyDecoder greedy(ctx.gwt());
    MwpmDecoder mwpm(ctx.gwt());
    Rng rng(7);
    BitVec dets, obs;
    for (int s = 0; s < 2000; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty())
            continue;
        DecodeResult g = greedy.decode(defects);
        DecodeResult m = mwpm.decode(defects);
        EXPECT_GE(g.matchingWeight, m.matchingWeight - 1e-9);
        EXPECT_TRUE(std::isfinite(g.matchingWeight));
    }
}

TEST(Greedy, AccuracyBetweenNothingAndMwpm)
{
    const auto &ctx = sharedContext();
    const uint64_t shots = 60000;
    auto greedy = runMemoryExperiment(ctx, greedyFactory(), shots, 9);
    auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), shots, 9);

    // Count "no decoding" errors on the same stream.
    uint64_t none_err = 0;
    {
        Rng root(9);
        Rng worker = root.split(0);
        BitVec dets, obs;
        for (uint64_t s = 0; s < shots; s++) {
            ctx.sampler().sample(worker, dets, obs);
            if (!obs.none())
                none_err++;
        }
    }
    ASSERT_GT(mwpm.logicalErrors.successes, 10u);
    EXPECT_LE(mwpm.logicalErrors.successes,
              greedy.logicalErrors.successes + 5);
    EXPECT_LT(greedy.logicalErrors.successes, none_err);
}

} // namespace
} // namespace astrea
