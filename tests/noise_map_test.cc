/**
 * @file
 * Tests for non-uniform noise maps and their integration with the
 * circuit generator and experiment context (paper Sec. 8.2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "decoders/mwpm_decoder.hh"
#include "harness/memory_experiment.hh"
#include "sim/frame_sim.hh"
#include "surface_code/noise_map.hh"

namespace astrea
{
namespace
{

TEST(NoiseMap, UniformByDefault)
{
    NoiseMap map(10);
    for (uint32_t q = 0; q < 10; q++)
        EXPECT_DOUBLE_EQ(map.qubitScale(q), 1.0);
    EXPECT_DOUBLE_EQ(map.maxScale(), 1.0);
}

TEST(NoiseMap, PairScaleIsGeometricMean)
{
    NoiseMap map(2);
    map.setQubitScale(0, 4.0);
    map.setQubitScale(1, 1.0);
    EXPECT_DOUBLE_EQ(map.pairScale(0, 1), 2.0);
}

TEST(NoiseMap, RandomDriftBounds)
{
    Rng rng(5);
    NoiseMap map = NoiseMap::randomDrift(100, 2.0, rng);
    for (uint32_t q = 0; q < 100; q++) {
        EXPECT_GE(map.qubitScale(q), 1.0 / 3.0 - 1e-12);
        EXPECT_LE(map.qubitScale(q), 3.0 + 1e-12);
    }
    // Not all equal.
    bool varied = false;
    for (uint32_t q = 1; q < 100; q++) {
        if (std::abs(map.qubitScale(q) - map.qubitScale(0)) > 1e-6)
            varied = true;
    }
    EXPECT_TRUE(varied);
}

TEST(NoiseMap, ZeroSpreadIsUniform)
{
    Rng rng(7);
    NoiseMap map = NoiseMap::randomDrift(20, 0.0, rng);
    for (uint32_t q = 0; q < 20; q++)
        EXPECT_DOUBLE_EQ(map.qubitScale(q), 1.0);
}

TEST(NoiseMap, HotSpot)
{
    NoiseMap map = NoiseMap::hotSpot(10, {3, 7}, 5.0);
    EXPECT_DOUBLE_EQ(map.qubitScale(3), 5.0);
    EXPECT_DOUBLE_EQ(map.qubitScale(7), 5.0);
    EXPECT_DOUBLE_EQ(map.qubitScale(0), 1.0);
    EXPECT_DOUBLE_EQ(map.maxScale(), 5.0);
}

TEST(NoiseMapCircuit, PerQubitProbabilitiesEmitted)
{
    SurfaceCodeLayout layout(3);
    NoiseMap map(layout.numQubits());
    map.setQubitScale(0, 3.0);

    MemoryExperimentSpec spec;
    spec.distance = 3;
    spec.noise = NoiseModel::uniform(1e-3);
    spec.noiseMap = &map;
    Circuit c = buildMemoryCircuit(layout, spec);

    // Depolarize1 on data qubit 0 must carry the scaled probability.
    bool found_scaled = false, found_base = false;
    for (const auto &op : c.instructions()) {
        if (op.type != GateType::Depolarize1)
            continue;
        EXPECT_EQ(op.targets.size(), 1u);  // Per-qubit when mapped.
        if (op.targets[0] == 0 && std::abs(op.arg - 3e-3) < 1e-12)
            found_scaled = true;
        if (op.targets[0] == 1 && std::abs(op.arg - 1e-3) < 1e-12)
            found_base = true;
    }
    EXPECT_TRUE(found_scaled);
    EXPECT_TRUE(found_base);
}

TEST(NoiseMapCircuit, DetectorsStayDeterministicNoiseless)
{
    SurfaceCodeLayout layout(3);
    NoiseMap map = NoiseMap::hotSpot(layout.numQubits(), {0, 5}, 4.0);
    MemoryExperimentSpec spec;
    spec.distance = 3;
    spec.noise = NoiseModel::noiseless();
    spec.noiseMap = &map;
    Circuit c = buildMemoryCircuit(layout, spec);

    FrameSimulator sim(c);
    Rng rng(1);
    BitVec dets, obs;
    sim.sample(rng, dets, obs);
    EXPECT_TRUE(dets.none());
}

TEST(NoiseMapCircuit, ScaledProbabilitiesClamped)
{
    SurfaceCodeLayout layout(3);
    NoiseMap map = NoiseMap::hotSpot(layout.numQubits(), {0}, 1e6);
    MemoryExperimentSpec spec;
    spec.distance = 3;
    spec.noise = NoiseModel::uniform(1e-2);
    spec.noiseMap = &map;
    Circuit c = buildMemoryCircuit(layout, spec);
    for (const auto &op : c.instructions()) {
        if (isNoise(op.type))
            EXPECT_LE(op.arg, 1.0);
    }
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(NoiseMapCircuit, RejectsWrongSize)
{
    SurfaceCodeLayout layout(3);
    NoiseMap map(5);  // Too small.
    MemoryExperimentSpec spec;
    spec.distance = 3;
    spec.noise = NoiseModel::uniform(1e-3);
    spec.noiseMap = &map;
    EXPECT_DEATH(buildMemoryCircuit(layout, spec), "mismatch");
}

TEST(DriftContext, BuildsAndSamples)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 2e-3;
    cfg.driftSpread = 2.0;
    cfg.driftSeed = 99;
    ExperimentContext ctx(cfg);
    ASSERT_NE(ctx.noiseMap(), nullptr);
    EXPECT_GT(ctx.noiseMap()->maxScale(), 1.0);

    // The drifted context decodes fine with its matched GWT.
    auto r = runMemoryExperiment(ctx, mwpmFactory(), 20000, 3);
    EXPECT_EQ(r.logicalErrors.trials, 20000u);
}

TEST(DriftContext, UniformConfigHasNoMap)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 2e-3;
    ExperimentContext ctx(cfg);
    EXPECT_EQ(ctx.noiseMap(), nullptr);
}

TEST(DriftContext, MatchedGwtBeatsStaleGwtUnderStrongDrift)
{
    // Decode heavily drifted shots twice: with the matched (drifted)
    // GWT and with a stale GWT built for uniform noise. The matched
    // table must not be worse (and is usually strictly better).
    ExperimentConfig drifted_cfg;
    drifted_cfg.distance = 5;
    drifted_cfg.physicalErrorRate = 2e-3;
    drifted_cfg.driftSpread = 6.0;
    drifted_cfg.driftSeed = 17;
    ExperimentContext drifted(drifted_cfg);

    ExperimentConfig uniform_cfg = drifted_cfg;
    uniform_cfg.driftSpread = 0.0;
    ExperimentContext uniform(uniform_cfg);

    const uint64_t shots = 150000;
    auto matched =
        runMemoryExperiment(drifted, mwpmFactory(), shots, 5);
    DecoderFactory stale = [&uniform](const ExperimentContext &) {
        return std::make_unique<MwpmDecoder>(uniform.gwt());
    };
    auto stale_r = runMemoryExperiment(drifted, stale, shots, 5);

    ASSERT_GT(stale_r.logicalErrors.successes, 20u);
    EXPECT_LE(matched.logicalErrors.successes,
              stale_r.logicalErrors.successes +
                  3 * static_cast<uint64_t>(std::sqrt(
                          static_cast<double>(
                              stale_r.logicalErrors.successes))));
}

} // namespace
} // namespace astrea
