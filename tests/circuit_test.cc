/**
 * @file
 * Unit tests for the circuit IR and builder.
 */

#include <gtest/gtest.h>

#include "circuit/builder.hh"
#include "circuit/circuit.hh"
#include "circuit/gate.hh"

namespace astrea
{
namespace
{

TEST(Gate, NoiseClassification)
{
    EXPECT_TRUE(isNoise(GateType::XError));
    EXPECT_TRUE(isNoise(GateType::ZError));
    EXPECT_TRUE(isNoise(GateType::Depolarize1));
    EXPECT_TRUE(isNoise(GateType::Depolarize2));
    EXPECT_FALSE(isNoise(GateType::CX));
    EXPECT_FALSE(isNoise(GateType::M));
    EXPECT_FALSE(isNoise(GateType::Detector));
}

TEST(Gate, Names)
{
    EXPECT_STREQ(gateName(GateType::CX), "CX");
    EXPECT_STREQ(gateName(GateType::Depolarize2), "DEPOLARIZE2");
    EXPECT_STREQ(gateName(GateType::ObservableInclude),
                 "OBSERVABLE_INCLUDE");
}

TEST(Gate, InstructionToString)
{
    Instruction i{GateType::XError, {3, 4}, 0.25};
    EXPECT_EQ(i.toString(), "X_ERROR(0.25) 3 4");
    Instruction g{GateType::H, {1}, 0.0};
    EXPECT_EQ(g.toString(), "H 1");
}

TEST(Circuit, CountsMeasurements)
{
    Circuit c(4);
    c.appendGate(GateType::M, {0, 1});
    c.appendGate(GateType::MR, {2});
    EXPECT_EQ(c.numMeasurements(), 3u);
}

TEST(Circuit, DetectorIndices)
{
    Circuit c(2);
    c.appendGate(GateType::M, {0, 1});
    uint32_t d0 = c.appendDetector({0}, DetectorInfo{});
    uint32_t d1 = c.appendDetector({0, 1}, DetectorInfo{});
    EXPECT_EQ(d0, 0u);
    EXPECT_EQ(d1, 1u);
    EXPECT_EQ(c.numDetectors(), 2u);
    EXPECT_EQ(c.detectorInfo().size(), 2u);
}

TEST(Circuit, ObservableCount)
{
    Circuit c(1);
    c.appendGate(GateType::M, {0});
    c.appendObservable(0, {0});
    EXPECT_EQ(c.numObservables(), 1u);
    c.appendObservable(2, {0});
    EXPECT_EQ(c.numObservables(), 3u);
}

TEST(Circuit, CountNoiseInstructions)
{
    Circuit c(2);
    c.appendGate(GateType::H, {0});
    c.appendGate(GateType::XError, {0}, 0.1);
    c.appendGate(GateType::Depolarize2, {0, 1}, 0.1);
    EXPECT_EQ(c.countNoiseInstructions(), 2u);
}

TEST(Circuit, ValidatePasses)
{
    Circuit c(2);
    c.appendGate(GateType::R, {0, 1});
    c.appendGate(GateType::CX, {0, 1});
    c.appendGate(GateType::M, {1});
    c.appendDetector({0}, DetectorInfo{});
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(Circuit, DetectorMustReferencePastMeasurement)
{
    Circuit c(2);
    c.appendGate(GateType::M, {0});
    EXPECT_DEATH(c.appendDetector({5}, DetectorInfo{}), "future");
}

TEST(Circuit, ToStringDumpsAllOps)
{
    Circuit c(2);
    c.appendGate(GateType::H, {0});
    c.appendGate(GateType::M, {0});
    c.appendDetector({0}, DetectorInfo{});
    std::string s = c.toString();
    EXPECT_NE(s.find("H 0"), std::string::npos);
    EXPECT_NE(s.find("DETECTOR"), std::string::npos);
}

TEST(NoiseModel, UniformSetsAllChannels)
{
    NoiseModel m = NoiseModel::uniform(1e-3);
    EXPECT_DOUBLE_EQ(m.dataDepolarization, 1e-3);
    EXPECT_DOUBLE_EQ(m.gateDepolarization, 1e-3);
    EXPECT_DOUBLE_EQ(m.measureFlip, 1e-3);
    EXPECT_DOUBLE_EQ(m.resetFlip, 1e-3);
    EXPECT_DOUBLE_EQ(m.finalMeasureFlip, 1e-3);
}

TEST(NoiseModel, NoiselessIsAllZero)
{
    NoiseModel m = NoiseModel::noiseless();
    EXPECT_DOUBLE_EQ(m.dataDepolarization, 0.0);
    EXPECT_DOUBLE_EQ(m.gateDepolarization, 0.0);
}

TEST(CircuitBuilder, MeasurementIndicesAreAbsolute)
{
    CircuitBuilder b(4);
    auto m1 = b.measure({0, 1});
    auto m2 = b.measure({2, 3});
    EXPECT_EQ(m1, (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(m2, (std::vector<uint32_t>{2, 3}));
    EXPECT_EQ(b.measurementCount(), 4u);
}

TEST(CircuitBuilder, SkipsZeroProbabilityNoise)
{
    CircuitBuilder b(2);
    b.xError(0.0, {0});
    b.depolarize1(0.0, {0});
    b.depolarize2(0.0, {0, 1});
    Circuit c = b.build();
    EXPECT_EQ(c.countNoiseInstructions(), 0u);
}

TEST(CircuitBuilder, SkipsEmptyTargetLists)
{
    CircuitBuilder b(2);
    b.reset({});
    b.hadamard({});
    b.cx({});
    Circuit c = b.build();
    EXPECT_TRUE(c.instructions().empty());
}

TEST(CircuitBuilder, BuildValidates)
{
    CircuitBuilder b(3);
    b.reset({0, 1, 2});
    b.cx({0, 1});
    auto m = b.measure({1});
    b.detector({m[0]}, DetectorInfo{Basis::Z, 0, 0, 0});
    b.observable(0, {m[0]});
    Circuit c = b.build();
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numDetectors(), 1u);
    EXPECT_EQ(c.numObservables(), 1u);
}

} // namespace
} // namespace astrea
