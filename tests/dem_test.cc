/**
 * @file
 * Tests for detector-error-model extraction and the sparse DEM
 * sampler, including the graphlike property of surface-code circuits
 * and the statistical equivalence of the two samplers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dem/extractor.hh"
#include "sim/dem_sampler.hh"
#include "sim/frame_sim.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{
namespace
{

Circuit
memCircuit(uint32_t d, double p, Basis basis = Basis::Z)
{
    SurfaceCodeLayout layout(d);
    MemoryExperimentSpec spec;
    spec.distance = d;
    spec.basis = basis;
    spec.noise = NoiseModel::uniform(p);
    return buildMemoryCircuit(layout, spec);
}

TEST(ErrorModel, MergesIdenticalSymptoms)
{
    ErrorModel m(4, 1);
    m.addMechanism(0.1, {1, 2}, 0);
    m.addMechanism(0.1, {2, 1}, 0);  // Same symptom, unsorted.
    ASSERT_EQ(m.mechanisms().size(), 1u);
    // p = 0.1 * 0.9 + 0.9 * 0.1 = 0.18.
    EXPECT_NEAR(m.mechanisms()[0].probability, 0.18, 1e-12);
    EXPECT_EQ(m.mechanisms()[0].detectors,
              (std::vector<uint32_t>{1, 2}));
}

TEST(ErrorModel, DistinguishesObservableMasks)
{
    ErrorModel m(4, 2);
    m.addMechanism(0.1, {1}, 0);
    m.addMechanism(0.1, {1}, 1);
    EXPECT_EQ(m.mechanisms().size(), 2u);
}

TEST(ErrorModel, IgnoresZeroProbability)
{
    ErrorModel m(4, 1);
    m.addMechanism(0.0, {1}, 0);
    EXPECT_TRUE(m.mechanisms().empty());
}

TEST(ErrorModel, ExpectedErrorsPerShot)
{
    ErrorModel m(4, 1);
    m.addMechanism(0.25, {0}, 0);
    m.addMechanism(0.5, {1}, 0);
    EXPECT_DOUBLE_EQ(m.expectedErrorsPerShot(), 0.75);
}

TEST(FaultSites, CountsChannels)
{
    Circuit c = memCircuit(3, 1e-3);
    auto sites = enumerateFaultSites(c);
    // d depolarize1 rounds x 9 data qubits + per-round reset/measure
    // flips (8 ancillas each) + final data flips + CX depolarize2
    // pairs: all present.
    EXPECT_GT(sites.size(), 100u);
    for (const auto &s : sites) {
        EXPECT_DOUBLE_EQ(s.prob, 1e-3);
        if (s.type == GateType::Depolarize2)
            EXPECT_NE(s.qubit1, kNoSecondQubit);
        else
            EXPECT_EQ(s.qubit1, kNoSecondQubit);
    }
}

TEST(FaultSites, OutcomeEnumerationProbabilities)
{
    Circuit c = memCircuit(3, 1e-3);
    auto sites = enumerateFaultSites(c);
    for (const auto &s : sites) {
        auto outcomes = enumerateFaultOutcomes(s);
        double total = 0.0;
        for (auto &[p, flips] : outcomes) {
            EXPECT_FALSE(flips.empty());
            total += p;
        }
        EXPECT_NEAR(total, s.prob, 1e-15);
        switch (s.type) {
          case GateType::XError:
            EXPECT_EQ(outcomes.size(), 1u);
            break;
          case GateType::Depolarize1:
            EXPECT_EQ(outcomes.size(), 3u);
            break;
          case GateType::Depolarize2:
            EXPECT_EQ(outcomes.size(), 15u);
            break;
          default:
            break;
        }
    }
}

class ExtractorTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ExtractorTest, SurfaceCodeMechanismsAreGraphlike)
{
    Circuit c = memCircuit(GetParam(), 1e-3);
    ExtractionStats stats;
    ErrorModel m = extractErrorModel(c, &stats);

    // Every mechanism flips at most two detectors of the decoded basis
    // (the property MWPM decoding depends on).
    EXPECT_EQ(stats.oversizeSymptoms, 0u);
    for (const auto &mech : m.mechanisms())
        EXPECT_LE(mech.detectors.size(), 2u);
}

TEST_P(ExtractorTest, NoUndetectableLogicalMechanisms)
{
    // A single fault must never flip the observable without flipping a
    // detector — that would mean the circuit has distance 1.
    Circuit c = memCircuit(GetParam(), 1e-3);
    ErrorModel m = extractErrorModel(c);
    for (const auto &mech : m.mechanisms()) {
        if (mech.observables != 0)
            EXPECT_FALSE(mech.detectors.empty());
    }
}

TEST_P(ExtractorTest, ProbabilitiesAreSane)
{
    Circuit c = memCircuit(GetParam(), 1e-3);
    ErrorModel m = extractErrorModel(c);
    EXPECT_GT(m.mechanisms().size(), 0u);
    for (const auto &mech : m.mechanisms()) {
        EXPECT_GT(mech.probability, 0.0);
        EXPECT_LT(mech.probability, 0.1);
        for (auto d : mech.detectors)
            EXPECT_LT(d, m.numDetectors());
    }
}

TEST_P(ExtractorTest, MemoryXAlsoGraphlike)
{
    Circuit c = memCircuit(GetParam(), 1e-3, Basis::X);
    ExtractionStats stats;
    extractErrorModel(c, &stats);
    EXPECT_EQ(stats.oversizeSymptoms, 0u);
}

INSTANTIATE_TEST_SUITE_P(Distances, ExtractorTest,
                         ::testing::Values(3u, 5u, 7u));

TEST(ExtractorStats, CountsPropagations)
{
    Circuit c = memCircuit(3, 1e-3);
    ExtractionStats stats;
    extractErrorModel(c, &stats);
    EXPECT_EQ(stats.faultSites, enumerateFaultSites(c).size());
    EXPECT_GT(stats.outcomesPropagated, stats.faultSites);
}

TEST(DemSampler, MatchesFrameSimulatorStatistics)
{
    // The sparse DEM sampler and the dense frame simulator must agree
    // on per-detector firing rates and the overall Hamming-weight
    // distribution.
    Circuit c = memCircuit(3, 5e-3);
    ErrorModel model = extractErrorModel(c);
    DemSampler sparse(model);
    FrameSimulator dense(c);

    const int shots = 40000;
    std::vector<uint64_t> sparse_rate(c.numDetectors(), 0);
    std::vector<uint64_t> dense_rate(c.numDetectors(), 0);
    uint64_t sparse_obs = 0, dense_obs = 0;
    double sparse_hw = 0.0, dense_hw = 0.0;

    Rng rng_a(101), rng_b(202);
    BitVec dets, obs;
    for (int s = 0; s < shots; s++) {
        sparse.sample(rng_a, dets, obs);
        sparse_hw += static_cast<double>(dets.popcount());
        for (auto i : dets.onesIndices())
            sparse_rate[i]++;
        if (!obs.none())
            sparse_obs++;

        dense.sample(rng_b, dets, obs);
        dense_hw += static_cast<double>(dets.popcount());
        for (auto i : dets.onesIndices())
            dense_rate[i]++;
        if (!obs.none())
            dense_obs++;
    }

    EXPECT_NEAR(sparse_hw / shots, dense_hw / shots,
                0.05 * std::max(1.0, dense_hw / shots));
    for (uint32_t i = 0; i < c.numDetectors(); i++) {
        double a = sparse_rate[i] / static_cast<double>(shots);
        double b = dense_rate[i] / static_cast<double>(shots);
        EXPECT_NEAR(a, b, 0.015) << "detector " << i;
    }
    EXPECT_NEAR(sparse_obs / static_cast<double>(shots),
                dense_obs / static_cast<double>(shots), 0.01);
}

TEST(DemSampler, FiredListMatchesSymptoms)
{
    Circuit c = memCircuit(3, 2e-2);
    ErrorModel model = extractErrorModel(c);
    DemSampler sampler(model);
    Rng rng(7);
    BitVec dets, obs;
    std::vector<uint32_t> fired;
    for (int s = 0; s < 200; s++) {
        sampler.sample(rng, dets, obs, &fired);
        // Recompute the symptom XOR from the fired mechanisms and
        // compare with the sampler's output.
        BitVec expect_d(c.numDetectors());
        uint64_t expect_o = 0;
        for (auto f : fired) {
            for (auto d : model.mechanisms()[f].detectors)
                expect_d.flip(d);
            expect_o ^= model.mechanisms()[f].observables;
        }
        EXPECT_TRUE(dets == expect_d);
        uint64_t got_o = 0;
        for (auto o : obs.onesIndices())
            got_o |= 1ull << o;
        EXPECT_EQ(got_o, expect_o);
    }
}

TEST(DemSampler, ZeroNoiseNeverFires)
{
    ErrorModel model(8, 1);
    DemSampler sampler(model);
    Rng rng(1);
    BitVec dets, obs;
    sampler.sample(rng, dets, obs);
    EXPECT_TRUE(dets.none());
    EXPECT_EQ(dets.size(), 8u);
}

TEST(DemSampler, FiringRateMatchesMechanismProbability)
{
    ErrorModel model(2, 1);
    model.addMechanism(0.05, {0}, 0);
    model.addMechanism(0.2, {1}, 1);
    DemSampler sampler(model);
    Rng rng(3);
    BitVec dets, obs;
    int fire0 = 0, fire1 = 0;
    const int shots = 50000;
    for (int s = 0; s < shots; s++) {
        sampler.sample(rng, dets, obs);
        if (dets.get(0))
            fire0++;
        if (dets.get(1))
            fire1++;
    }
    EXPECT_NEAR(fire0 / static_cast<double>(shots), 0.05, 0.005);
    EXPECT_NEAR(fire1 / static_cast<double>(shots), 0.2, 0.01);
}

} // namespace
} // namespace astrea
