/**
 * @file
 * DecoderRegistry conformance tests.
 *
 * Every registered decoder name must be constructible from the typed
 * DecoderOptions, and its allocation-free batch path (decodeInto /
 * decodeBatch with reused buffers) must produce results identical to
 * the single-shot decode() shim on seeded random shots. Also covers
 * alias and display-name resolution, the enumerating unknown-name
 * error, and the capture round-trip through makeFromDescription().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"
#include "decoders/registry.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/json_value.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
contextFor(uint32_t distance)
{
    static ExperimentContext d3 = [] {
        ExperimentConfig cfg;
        cfg.distance = 3;
        cfg.physicalErrorRate = 3e-3;
        return ExperimentContext(cfg);
    }();
    static ExperimentContext d5 = [] {
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = 3e-3;
        return ExperimentContext(cfg);
    }();
    return distance == 3 ? d3 : d5;
}

// ------------------------------------------------------------ metadata

TEST(Registry, ListsEveryCoreNameOnce)
{
    std::set<std::string> names;
    for (const auto &info : DecoderRegistry::global().listDecoders()) {
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate listing for " << info.name;
        EXPECT_FALSE(info.description.empty()) << info.name;
    }
    for (const char *expected :
         {"astrea", "astrea-g", "mwpm", "union-find", "clique", "lut",
          "greedy", "windowed-astrea", "windowed-mwpm",
          "windowed-greedy"}) {
        EXPECT_TRUE(names.count(expected))
            << "registry missing " << expected;
    }
}

TEST(Registry, KindsAndAliases)
{
    for (const auto &info : DecoderRegistry::global().listDecoders()) {
        if (info.name == "mwpm") {
            EXPECT_EQ(info.kind, DecoderKind::Software);
            ASSERT_EQ(info.aliases.size(), 1u);
            EXPECT_EQ(info.aliases[0], "blossom");
        } else if (info.name == "union-find") {
            ASSERT_EQ(info.aliases.size(), 1u);
            EXPECT_EQ(info.aliases[0], "uf");
        } else if (info.name == "astrea") {
            EXPECT_EQ(info.kind, DecoderKind::Hardware);
        } else if (info.name.rfind("windowed-", 0) == 0) {
            EXPECT_EQ(info.kind, DecoderKind::Wrapper);
        }
    }
    EXPECT_STREQ(decoderKindName(DecoderKind::Hardware), "hardware");
    EXPECT_STREQ(decoderKindName(DecoderKind::Software), "software");
    EXPECT_STREQ(decoderKindName(DecoderKind::Wrapper), "wrapper");
}

TEST(Registry, CanonicalNameResolution)
{
    const auto &reg = DecoderRegistry::global();
    // Canonical names resolve to themselves.
    EXPECT_EQ(reg.canonicalName("astrea"), "astrea");
    EXPECT_EQ(reg.canonicalName("windowed-mwpm"), "windowed-mwpm");
    // Aliases.
    EXPECT_EQ(reg.canonicalName("blossom"), "mwpm");
    EXPECT_EQ(reg.canonicalName("uf"), "union-find");
    EXPECT_EQ(reg.canonicalName("windowed-blossom"), "windowed-mwpm");
    // Display names (Decoder::name() output).
    EXPECT_EQ(reg.canonicalName("Astrea"), "astrea");
    EXPECT_EQ(reg.canonicalName("Astrea-G"), "astrea-g");
    EXPECT_EQ(reg.canonicalName("MWPM"), "mwpm");
    EXPECT_EQ(reg.canonicalName("UF(AFS)"), "union-find");
    EXPECT_EQ(reg.canonicalName("UF-weighted"), "union-find");
    EXPECT_EQ(reg.canonicalName("LUT(LILLIPUT)"), "lut");
    EXPECT_EQ(reg.canonicalName("Windowed(MWPM)"), "windowed-mwpm");
    EXPECT_EQ(reg.canonicalName("Windowed(Astrea)"), "windowed-astrea");
    // Unknown or ineligible names resolve to "".
    EXPECT_EQ(reg.canonicalName("bogus"), "");
    EXPECT_EQ(reg.canonicalName(""), "");
    // Only matching-reporting inners may be windowed, and the prefix
    // does not nest.
    EXPECT_EQ(reg.canonicalName("windowed-lut"), "");
    EXPECT_EQ(reg.canonicalName("windowed-windowed-mwpm"), "");
}

TEST(Registry, UnknownNameErrorEnumeratesKnownNames)
{
    DecoderOptions opts = decoderOptionsFor(contextFor(3));
    std::string error;
    auto dec = DecoderRegistry::global().make("no-such", opts, &error);
    EXPECT_EQ(dec, nullptr);
    EXPECT_NE(error.find("unknown decoder 'no-such'"),
              std::string::npos)
        << error;
    for (const char *name : {"astrea", "astrea-g", "mwpm", "blossom",
                             "union-find", "uf", "clique", "lut",
                             "greedy", "windowed-"}) {
        EXPECT_NE(error.find(name), std::string::npos)
            << "error does not enumerate " << name << ": " << error;
    }
}

TEST(Registry, MissingContextIsAnErrorNotACrash)
{
    DecoderOptions empty;  // No gwt / graph / detectorInfo.
    std::string error;
    for (const char *name :
         {"astrea", "mwpm", "union-find", "clique", "lut", "greedy",
          "windowed-mwpm"}) {
        error.clear();
        auto dec = DecoderRegistry::global().make(name, empty, &error);
        EXPECT_EQ(dec, nullptr) << name;
        EXPECT_FALSE(error.empty()) << name;
    }
}

// -------------------------------------------- batch/single equivalence

/**
 * Drive one decoder instance through the decode() shim and a second,
 * identically-configured instance through decodeBatch() with reused
 * result/scratch buffers; every observable outcome must agree.
 */
void
expectBatchMatchesSingle(const std::string &name, uint32_t distance,
                         int shots)
{
    const ExperimentContext &ctx = contextFor(distance);
    DecoderOptions opts = decoderOptionsFor(ctx);
    std::string error;
    auto single = DecoderRegistry::global().make(name, opts, &error);
    ASSERT_NE(single, nullptr) << name << ": " << error;
    auto batched = DecoderRegistry::global().make(name, opts, &error);
    ASSERT_NE(batched, nullptr) << name << ": " << error;

    Rng rng(1234 + distance);
    BitVec dets, obs;
    SyndromeBatch batch;
    std::vector<DecodeResult> batch_results;
    std::vector<DecodeResult> single_results;
    DecodeScratch scratch;

    constexpr int kBatchShots = 64;
    int done = 0;
    while (done < shots) {
        const int n = std::min(kBatchShots, shots - done);
        batch.clear();
        single_results.clear();
        for (int i = 0; i < n; i++) {
            ctx.sampler().sample(rng, dets, obs);
            std::vector<uint32_t> defects = dets.onesIndices();
            batch.add(defects);
            single_results.push_back(single->decode(defects));
        }
        batched->decodeBatch(batch, batch_results, scratch);
        ASSERT_GE(batch_results.size(), static_cast<size_t>(n));
        for (int i = 0; i < n; i++) {
            const DecodeResult &a = single_results[i];
            const DecodeResult &b = batch_results[i];
            const int shot = done + i;
            EXPECT_EQ(a.obsMask, b.obsMask) << name << " shot " << shot;
            EXPECT_EQ(a.gaveUp, b.gaveUp) << name << " shot " << shot;
            EXPECT_EQ(a.cycles, b.cycles) << name << " shot " << shot;
            EXPECT_NEAR(a.matchingWeight, b.matchingWeight, 1e-9)
                << name << " shot " << shot;
            EXPECT_EQ(a.matchedPairs, b.matchedPairs)
                << name << " shot " << shot;
        }
        done += n;
    }
}

TEST(Registry, EveryListedDecoderBatchEqualsSingleShot)
{
    for (const auto &info : DecoderRegistry::global().listDecoders()) {
        SCOPED_TRACE(info.name);
        for (uint32_t d : {3u, 5u})
            expectBatchMatchesSingle(info.name, d, 1000);
    }
}

// --------------------------------------------------- capture round-trip

TEST(Registry, MakeFromDescriptionRoundTrip)
{
    const ExperimentContext &ctx = contextFor(5);
    DecoderOptions opts = decoderOptionsFor(ctx);
    opts.astreaG.weightThresholdDecades = 3.0;
    std::string error;

    for (const char *name :
         {"astrea", "astrea-g", "mwpm", "union-find", "greedy",
          "windowed-mwpm"}) {
        auto original =
            DecoderRegistry::global().make(name, opts, &error);
        ASSERT_NE(original, nullptr) << name << ": " << error;

        telemetry::JsonValue desc;
        ASSERT_TRUE(telemetry::parseJson(
            decoderDescriptionJson(*original), desc))
            << name;
        auto rebuilt = DecoderRegistry::global().makeFromDescription(
            desc["name"].asString(""), desc, opts, &error);
        ASSERT_NE(rebuilt, nullptr) << name << ": " << error;
        EXPECT_EQ(rebuilt->name(), original->name()) << name;
        EXPECT_EQ(decoderDescriptionJson(*rebuilt),
                  decoderDescriptionJson(*original))
            << name;

        // The rebuilt decoder behaves identically.
        Rng rng(7);
        BitVec dets, obs;
        for (int s = 0; s < 200; s++) {
            ctx.sampler().sample(rng, dets, obs);
            auto defects = dets.onesIndices();
            DecodeResult a = original->decode(defects);
            DecodeResult b = rebuilt->decode(defects);
            EXPECT_EQ(a.obsMask, b.obsMask) << name << " shot " << s;
            EXPECT_EQ(a.gaveUp, b.gaveUp) << name << " shot " << s;
        }
    }

    // Unknown display names fail with an enumerating error.
    telemetry::JsonValue null_cfg;
    auto bad = DecoderRegistry::global().makeFromDescription(
        "NotADecoder", null_cfg, opts, &error);
    EXPECT_EQ(bad, nullptr);
    EXPECT_NE(error.find("NotADecoder"), std::string::npos) << error;
    EXPECT_NE(error.find("astrea"), std::string::npos) << error;
}

} // namespace
} // namespace astrea
