/**
 * @file
 * Tests for the decode flight recorder and deterministic capture
 * replay: ring-buffer wraparound, one-shot capture dumping with a
 * schema-versioned JSON file, run isolation via beginRun(), and the
 * end-to-end guarantee that a capture re-decodes to the recorded
 * verdicts (the decoders are pure functions of the weight table and
 * the defect list).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/memory_experiment.hh"
#include "harness/replay.hh"
#include "sim/dem_sampler.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json_value.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

DecodeRecord
makeRecord(uint64_t shot, bool trigger = false)
{
    DecodeRecord r;
    r.shot = shot;
    r.defects = {static_cast<uint32_t>(shot),
                 static_cast<uint32_t>(shot + 1)};
    r.gaveUp = trigger;
    return r;
}

} // namespace

TEST(FlightRecorderTest, RingEvictsOldestOnWraparound)
{
    FlightRecorder recorder(4);
    for (uint64_t s = 0; s < 10; s++)
        recorder.record(makeRecord(s));

    EXPECT_EQ(recorder.capacity(), 4u);
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.totalRecorded(), 10u);

    auto snap = recorder.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().shot, 6u);  // Oldest surviving record.
    EXPECT_EQ(snap.back().shot, 9u);
}

TEST(FlightRecorderTest, CaptureDumpsOnceOnFirstTrigger)
{
    const std::string path = tempPath("fr_capture.json");
    FlightRecorder recorder(8);
    recorder.beginRun("{\"distance\":3}", "{\"name\":\"Astrea\"}");
    recorder.setCapturePath(path);

    recorder.record(makeRecord(0));
    recorder.record(makeRecord(1));
    EXPECT_EQ(recorder.capturesWritten(), 0u);

    recorder.record(makeRecord(2, /*trigger=*/true));
    EXPECT_EQ(recorder.capturesWritten(), 1u);
    EXPECT_EQ(recorder.capturePathWritten(), path);

    // One-shot arming: later triggers must not overwrite the evidence.
    recorder.record(makeRecord(3, /*trigger=*/true));
    EXPECT_EQ(recorder.capturesWritten(), 1u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(readFile(path), doc));
    EXPECT_EQ(doc["capture_schema_version"].asUint(),
              kCaptureSchemaVersion);
    EXPECT_EQ(doc["context"]["distance"].asUint(), 3u);
    EXPECT_EQ(doc["decoder"]["name"].asString(), "Astrea");
    EXPECT_EQ(doc["trigger"]["reason"].asString(), "give_up");
    EXPECT_EQ(doc["trigger"]["shot"].asUint(), 2u);
    ASSERT_EQ(doc["records"].arr.size(), 3u);
    EXPECT_EQ(doc["records"].arr[0]["shot"].asUint(), 0u);
    EXPECT_EQ(doc["records"].arr[2]["shot"].asUint(), 2u);
    EXPECT_TRUE(doc["records"].arr[2]["gave_up"].asBool());
    EXPECT_EQ(doc["records"].arr[1]["defects"].arr.size(), 2u);
}

TEST(FlightRecorderTest, CaptureDirWritesNumberedFiles)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("fr_capture_dir");
    fs::remove_all(dir);
    fs::create_directories(dir);

    FlightRecorder recorder(8);
    recorder.beginRun("{\"distance\":3}", "{\"name\":\"Astrea\"}");
    recorder.setCaptureDir(dir);
    recorder.setCaptureRateLimit(/*max_files=*/2,
                                 /*min_interval_ms=*/0);

    recorder.record(makeRecord(0, /*trigger=*/true));
    recorder.record(makeRecord(1, /*trigger=*/true));
    // Third trigger exceeds max_files: counted, not written.
    recorder.record(makeRecord(2, /*trigger=*/true));

    EXPECT_EQ(recorder.capturesWritten(), 2u);
    EXPECT_EQ(recorder.capturesRateLimited(), 1u);
    EXPECT_TRUE(fs::exists(dir + "/capture-000.json"));
    EXPECT_TRUE(fs::exists(dir + "/capture-001.json"));
    EXPECT_FALSE(fs::exists(dir + "/capture-002.json"));

    // Each file is a complete, parseable capture.
    JsonValue doc;
    ASSERT_TRUE(
        parseJson(readFile(dir + "/capture-001.json"), doc));
    EXPECT_EQ(doc["capture_schema_version"].asUint(),
              kCaptureSchemaVersion);
    EXPECT_EQ(doc["trigger"]["shot"].asUint(), 1u);
}

TEST(FlightRecorderTest, CaptureDirRateLimitsByInterval)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("fr_capture_interval");
    fs::remove_all(dir);
    fs::create_directories(dir);

    FlightRecorder recorder(8);
    recorder.setCaptureDir(dir);
    // A day between captures: the second trigger inside the window
    // must be rate-limited, not written.
    recorder.setCaptureRateLimit(/*max_files=*/10,
                                 /*min_interval_ms=*/86400000);

    recorder.record(makeRecord(0, /*trigger=*/true));
    recorder.record(makeRecord(1, /*trigger=*/true));

    EXPECT_EQ(recorder.capturesWritten(), 1u);
    EXPECT_EQ(recorder.capturesRateLimited(), 1u);
    EXPECT_TRUE(fs::exists(dir + "/capture-000.json"));
    EXPECT_FALSE(fs::exists(dir + "/capture-001.json"));
}

TEST(FlightRecorderTest, AuditMismatchIsACaptureTrigger)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("fr_audit_trigger");
    fs::remove_all(dir);
    fs::create_directories(dir);

    FlightRecorder recorder(8);
    recorder.setCaptureDir(dir);
    recorder.setCaptureRateLimit(4, 0);

    DecodeRecord r = makeRecord(3);
    r.audited = true;
    r.auditMismatch = true;
    r.oracleName = "dp";
    r.oracleWeight = 1.25;
    r.oracleObs = 1;
    recorder.record(r);

    EXPECT_EQ(recorder.capturesWritten(), 1u);
    JsonValue doc;
    ASSERT_TRUE(
        parseJson(readFile(dir + "/capture-000.json"), doc));
    // audit_mismatch outranks give_up / logical_error as the reason.
    EXPECT_EQ(doc["trigger"]["reason"].asString(), "audit_mismatch");
    const JsonValue &rec = doc["records"].arr.back();
    EXPECT_TRUE(rec["audit"]["mismatch"].asBool(false));
    EXPECT_EQ(rec["audit"]["oracle"].asString(), "dp");
    EXPECT_DOUBLE_EQ(rec["audit"]["oracle_weight"].asNumber(0.0),
                     1.25);
}

TEST(FlightRecorderTest, BeginRunClearsPreviousRing)
{
    FlightRecorder recorder(8);
    recorder.beginRun("{}", "{}");
    recorder.record(makeRecord(0));
    recorder.record(makeRecord(1));
    EXPECT_EQ(recorder.size(), 2u);

    // A new run must never mix records from a different configuration
    // into its capture.
    recorder.beginRun("{}", "{}");
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.totalRecorded(), 2u);
}

namespace
{

/**
 * Record a short Astrea-G run into a local recorder and dump a
 * capture, mirroring what the harness hooks do. A tiny cycle budget at
 * a Hamming-weight-rich operating point guarantees give-ups.
 */
std::string
writeEndToEndCapture(const std::string &path)
{
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 4e-3;
    ExperimentContext ctx(cfg);

    AstreaGConfig agc;
    agc.cycleBudget = 20;
    auto factory = astreaGFactory(agc);
    auto decoder = factory(ctx);

    FlightRecorder recorder(32);
    recorder.beginRun(experimentConfigJson(cfg),
                      decoderDescriptionJson(*decoder));

    Rng rng(99);
    BitVec dets(ctx.circuit().numDetectors());
    BitVec obs(ctx.circuit().numObservables());
    bool triggered = false;
    for (uint64_t s = 0; s < 4096 && !triggered; s++) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        DecodeResult dr = decoder->decode(defects);
        uint64_t actual = 0;
        for (auto o : obs.onesIndices())
            actual |= (1ull << o);

        DecodeRecord rec;
        rec.shot = s;
        rec.defects = defects;
        rec.obsMask = dr.obsMask;
        rec.actualObs = actual;
        rec.gaveUp = dr.gaveUp;
        rec.logicalError = dr.obsMask != actual;
        rec.latencyNs = dr.latencyNs;
        rec.cycles = dr.cycles;
        rec.matchingWeight = dr.matchingWeight;
        recorder.record(rec);
        // Dump at the trigger like the harness does, so the capture's
        // ring ends with the trigger record.
        if (rec.gaveUp || rec.logicalError) {
            triggered = true;
            DecodeRecord trigger = rec;
            EXPECT_TRUE(recorder.dumpCapture(
                path, &trigger,
                trigger.gaveUp ? "give_up" : "logical_error"));
        }
    }
    EXPECT_TRUE(triggered) << "operating point produced no trigger";
    return path;
}

} // namespace

TEST(ReplayTest, CaptureReplaysToIdenticalVerdicts)
{
    const std::string path =
        writeEndToEndCapture(tempPath("fr_replay.json"));

    ReplayCapture capture;
    std::string error;
    ASSERT_TRUE(loadCapture(path, capture, &error)) << error;
    EXPECT_EQ(capture.decoderName, "Astrea-G");
    EXPECT_EQ(capture.config.distance, 5u);
    ASSERT_FALSE(capture.records.empty());
    EXPECT_LE(capture.records.size(), 32u);  // Ring capacity.
    const auto &last = capture.records.back();
    EXPECT_TRUE(last.gaveUp || last.logicalError);

    std::ostringstream narration;
    ReplayOptions opts;
    opts.verbose = true;
    ReplaySummary summary = replayCapture(capture, opts, narration);
    EXPECT_EQ(summary.records, capture.records.size());
    EXPECT_EQ(summary.mismatches, 0u) << narration.str();
    EXPECT_GT(summary.gaveUps + summary.logicalErrors, 0u);
}

TEST(ReplayTest, TamperedVerdictIsReportedAsMismatch)
{
    const std::string path =
        writeEndToEndCapture(tempPath("fr_tamper.json"));

    ReplayCapture capture;
    std::string error;
    ASSERT_TRUE(loadCapture(path, capture, &error)) << error;

    // Flip one recorded prediction: the replay must notice that the
    // decoder does not actually produce this verdict.
    capture.records.back().obsMask ^= 1;

    std::ostringstream narration;
    ReplaySummary summary =
        replayCapture(capture, ReplayOptions{}, narration);
    EXPECT_EQ(summary.mismatches, 1u);
    EXPECT_FALSE(summary.ok());
    EXPECT_NE(narration.str().find("MISMATCH"), std::string::npos);
}

TEST(ReplayTest, RejectsMalformedAndUnsupportedCaptures)
{
    ReplayCapture capture;
    std::string error;

    EXPECT_FALSE(
        loadCapture(tempPath("fr_missing.json"), capture, &error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);

    const std::string bad = tempPath("fr_bad.json");
    {
        std::ofstream out(bad);
        out << "{\"capture_schema_version\": 999}";
    }
    EXPECT_FALSE(loadCapture(bad, capture, &error));
    EXPECT_NE(error.find("schema version"), std::string::npos);
}
