/**
 * @file
 * Unit and property tests for the rotated surface code layout: qubit
 * counts (paper Table 1), stabilizer commutation, logical operators,
 * and the four-layer CX schedule.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "surface_code/layout.hh"

namespace astrea
{
namespace
{

class LayoutTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LayoutTest, QubitCountsMatchTable1)
{
    const uint32_t d = GetParam();
    SurfaceCodeLayout layout(d);
    EXPECT_EQ(layout.numDataQubits(), d * d);
    EXPECT_EQ(layout.numAncillas(), d * d - 1);
    EXPECT_EQ(layout.numQubits(), 2 * d * d - 1);
    EXPECT_EQ(layout.plaquettesOf(Basis::X).size(), (d * d - 1) / 2);
    EXPECT_EQ(layout.plaquettesOf(Basis::Z).size(), (d * d - 1) / 2);
}

TEST_P(LayoutTest, AncillaIndicesUniqueAndAfterData)
{
    SurfaceCodeLayout layout(GetParam());
    std::set<uint32_t> seen;
    for (const auto &p : layout.plaquettes()) {
        EXPECT_GE(p.ancilla, layout.numDataQubits());
        EXPECT_LT(p.ancilla, layout.numQubits());
        EXPECT_TRUE(seen.insert(p.ancilla).second);
    }
}

TEST_P(LayoutTest, PlaquettesHaveTwoOrFourCorners)
{
    SurfaceCodeLayout layout(GetParam());
    for (const auto &p : layout.plaquettes()) {
        int corners = 0;
        for (auto c : p.corners) {
            if (c != kNoQubit) {
                corners++;
                EXPECT_LT(c, layout.numDataQubits());
            }
        }
        EXPECT_TRUE(corners == 2 || corners == 4)
            << "plaquette at (" << p.x << "," << p.y << ")";
    }
}

TEST_P(LayoutTest, StabilizersCommute)
{
    // Every X plaquette must overlap every Z plaquette in an even
    // number of data qubits.
    SurfaceCodeLayout layout(GetParam());
    for (auto xi : layout.plaquettesOf(Basis::X)) {
        const auto &xp = layout.plaquettes()[xi];
        std::set<uint32_t> xs;
        for (auto c : xp.corners) {
            if (c != kNoQubit)
                xs.insert(c);
        }
        for (auto zi : layout.plaquettesOf(Basis::Z)) {
            const auto &zp = layout.plaquettes()[zi];
            int overlap = 0;
            for (auto c : zp.corners) {
                if (c != kNoQubit && xs.count(c))
                    overlap++;
            }
            EXPECT_EQ(overlap % 2, 0);
        }
    }
}

TEST_P(LayoutTest, LogicalOperatorsCommuteWithStabilizers)
{
    // Logical Z (row of Z) must overlap every X plaquette evenly;
    // logical X (column of X) must overlap every Z plaquette evenly.
    SurfaceCodeLayout layout(GetParam());
    auto check = [&](Basis logical_basis, Basis stab_basis) {
        auto support = layout.logicalSupport(logical_basis);
        std::set<uint32_t> sup(support.begin(), support.end());
        for (auto pi : layout.plaquettesOf(stab_basis)) {
            const auto &p = layout.plaquettes()[pi];
            int overlap = 0;
            for (auto c : p.corners) {
                if (c != kNoQubit && sup.count(c))
                    overlap++;
            }
            EXPECT_EQ(overlap % 2, 0);
        }
    };
    check(Basis::Z, Basis::X);
    check(Basis::X, Basis::Z);
}

TEST_P(LayoutTest, LogicalOperatorsAnticommute)
{
    // Z_L and X_L must share an odd number of qubits.
    SurfaceCodeLayout layout(GetParam());
    auto zs = layout.logicalSupport(Basis::Z);
    auto xs = layout.logicalSupport(Basis::X);
    std::set<uint32_t> zset(zs.begin(), zs.end());
    int overlap = 0;
    for (auto q : xs) {
        if (zset.count(q))
            overlap++;
    }
    EXPECT_EQ(overlap % 2, 1);
}

TEST_P(LayoutTest, LogicalWeightEqualsDistance)
{
    SurfaceCodeLayout layout(GetParam());
    EXPECT_EQ(layout.logicalSupport(Basis::Z).size(), GetParam());
    EXPECT_EQ(layout.logicalSupport(Basis::X).size(), GetParam());
}

TEST_P(LayoutTest, EveryDataQubitTouchedByBothBases)
{
    // Each data qubit is in the support of at least one stabilizer of
    // each basis (otherwise some single-qubit errors are invisible).
    SurfaceCodeLayout layout(GetParam());
    for (Basis b : {Basis::X, Basis::Z}) {
        std::set<uint32_t> covered;
        for (auto pi : layout.plaquettesOf(b)) {
            for (auto c : layout.plaquettes()[pi].corners) {
                if (c != kNoQubit)
                    covered.insert(c);
            }
        }
        EXPECT_EQ(covered.size(), layout.numDataQubits());
    }
}

TEST_P(LayoutTest, CxScheduleHasNoConflicts)
{
    // Within each of the four layers, no data qubit may interact with
    // two plaquettes at once (the schedule from memory_circuit.cc).
    SurfaceCodeLayout layout(GetParam());
    const int x_order[4] = {kNW, kNE, kSW, kSE};
    const int z_order[4] = {kNW, kSW, kNE, kSE};
    for (int layer = 0; layer < 4; layer++) {
        std::set<uint32_t> used;
        for (const auto &p : layout.plaquettes()) {
            int slot = (p.basis == Basis::X) ? x_order[layer]
                                             : z_order[layer];
            uint32_t dq = p.corners[slot];
            if (dq == kNoQubit)
                continue;
            EXPECT_TRUE(used.insert(dq).second)
                << "data qubit " << dq << " reused in layer " << layer;
        }
    }
}

TEST_P(LayoutTest, VerticalXChainIsUndetectedLogical)
{
    // An X error on every data qubit of column 0 flips no Z stabilizer
    // (it is the logical X operator).
    SurfaceCodeLayout layout(GetParam());
    const uint32_t d = layout.distance();
    std::map<uint32_t, int> flips;  // Z-plaquette index -> flip count.
    for (uint32_t r = 0; r < d; r++) {
        uint32_t q = layout.dataQubit(r, 0);
        for (auto zi : layout.plaquettesOf(Basis::Z)) {
            for (auto c : layout.plaquettes()[zi].corners) {
                if (c == q)
                    flips[zi]++;
            }
        }
    }
    for (auto [zi, count] : flips)
        EXPECT_EQ(count % 2, 0) << "Z plaquette " << zi;
}

INSTANTIATE_TEST_SUITE_P(Distances, LayoutTest,
                         ::testing::Values(3u, 5u, 7u, 9u, 11u));

TEST(Layout, RejectsEvenDistance)
{
    EXPECT_EXIT(SurfaceCodeLayout(4), ::testing::ExitedWithCode(1),
                "odd");
}

TEST(Layout, RejectsDistanceOne)
{
    EXPECT_EXIT(SurfaceCodeLayout(1), ::testing::ExitedWithCode(1),
                "odd");
}

TEST(Layout, DataQubitIndexing)
{
    SurfaceCodeLayout layout(5);
    EXPECT_EQ(layout.dataQubit(0, 0), 0u);
    EXPECT_EQ(layout.dataQubit(0, 4), 4u);
    EXPECT_EQ(layout.dataQubit(1, 0), 5u);
    EXPECT_EQ(layout.dataQubit(4, 4), 24u);
}

TEST(Layout, AncillasOfMatchesPlaquettesOf)
{
    SurfaceCodeLayout layout(5);
    auto plaqs = layout.plaquettesOf(Basis::X);
    auto ancs = layout.ancillasOf(Basis::X);
    ASSERT_EQ(plaqs.size(), ancs.size());
    for (size_t i = 0; i < plaqs.size(); i++)
        EXPECT_EQ(layout.plaquettes()[plaqs[i]].ancilla, ancs[i]);
}

} // namespace
} // namespace astrea
