/**
 * @file
 * Tests for the Prometheus text exposition (telemetry/prometheus.hh):
 * name sanitization, label escaping, TYPE/HELP headers, cumulative
 * `le` buckets whose "+Inf" equals `_count`, and registry rendering.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/prometheus.hh"

using namespace astrea;
using namespace astrea::telemetry;

namespace
{

/** All lines of `text` that start with a sample of `name`. */
std::vector<std::string>
sampleLines(const std::string &text, const std::string &name)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(name, 0) == 0 && line.rfind("# ", 0) != 0) {
            char next = line.size() > name.size() ? line[name.size()]
                                                  : ' ';
            if (next == ' ' || next == '{')
                out.push_back(line);
        }
    }
    return out;
}

TEST(PrometheusTest, MetricNameSanitization)
{
    EXPECT_EQ(promMetricName("stream.windows"), "stream_windows");
    EXPECT_EQ(promMetricName("astrea.hw-6/defects"),
              "astrea_hw_6_defects");
    EXPECT_EQ(promMetricName("9lives"), "_lives");
    EXPECT_EQ(promMetricName("ok_name:sub"), "ok_name:sub");
}

TEST(PrometheusTest, LabelEscaping)
{
    EXPECT_EQ(promEscapeLabel("plain"), "plain");
    EXPECT_EQ(promEscapeLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(promEscapeLabel("a\nb"), "a\\nb");
}

TEST(PrometheusTest, CounterAndGaugeFamilies)
{
    PrometheusWriter w;
    w.counter("astrea_shots_total", "Shots decoded", 12);
    w.gauge("astrea_queue_depth", "Queue depth", 2.5);
    std::string text = w.str();

    EXPECT_NE(text.find("# HELP astrea_shots_total Shots decoded\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE astrea_shots_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_shots_total 12\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE astrea_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_queue_depth 2.5\n"),
              std::string::npos);
}

TEST(PrometheusTest, LabeledSample)
{
    PrometheusWriter w;
    w.family("astrea_info", "gauge", "Build info");
    w.sample("astrea_info", uint64_t{1},
             {{"decoder", "astrea"}, {"note", "a\"b"}});
    EXPECT_NE(w.str().find("astrea_info{decoder=\"astrea\","
                           "note=\"a\\\"b\"} 1\n"),
              std::string::npos);
}

TEST(PrometheusTest, HistogramCumulativeBucketsAndInf)
{
    PrometheusWriter w;
    w.histogram("astrea_lat_ns", "Latency",
                {{1.0, 3}, {2.0, 5}, {4.0, 9}}, 10, 123.5);
    std::string text = w.str();

    EXPECT_NE(text.find("# TYPE astrea_lat_ns histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_lat_ns_bucket{le=\"1\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_lat_ns_bucket{le=\"2\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_lat_ns_bucket{le=\"4\"} 9\n"),
              std::string::npos);
    // The implicit +Inf bucket equals _count.
    EXPECT_NE(text.find("astrea_lat_ns_bucket{le=\"+Inf\"} 10\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_lat_ns_sum 123.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_lat_ns_count 10\n"),
              std::string::npos);
}

TEST(PrometheusTest, RegistryRendering)
{
    MetricsRegistry reg;
    reg.counter("decode.shots").add(7);
    reg.gauge("stream.max_window_defects").set(12);
    reg.intHistogram("hw", 8).add(3, 4);
    reg.intHistogram("hw", 8).add(100, 1);  // Overflow.
    for (double ns : {100.0, 200.0, 3000.0})
        reg.latency("decode.ns").record(ns);

    std::string text = renderPrometheus(reg);

    // Counters get _total; dots become underscores.
    EXPECT_NE(text.find("# TYPE astrea_decode_shots_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_decode_shots_total 7\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE astrea_stream_max_window_defects gauge\n"),
        std::string::npos);

    // Integer histogram: +Inf equals total including overflow.
    EXPECT_NE(text.find("astrea_hw_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_hw_count 5\n"), std::string::npos);

    // Latency histogram: cumulative buckets end at _count = 3.
    EXPECT_NE(text.find("# TYPE astrea_decode_ns histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("astrea_decode_ns_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);

    // Every bucket line is cumulative (non-decreasing).
    uint64_t prev = 0;
    for (const std::string &line :
         sampleLines(text, "astrea_decode_ns_bucket")) {
        uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, prev) << line;
        prev = v;
    }
    EXPECT_EQ(prev, 3u);
}

TEST(PrometheusTest, EmptyRegistryRendersNothing)
{
    MetricsRegistry reg;
    EXPECT_EQ(renderPrometheus(reg), "");
}

} // namespace
