/**
 * @file
 * Tests for the ablation knobs: Astrea's quantization and
 * effective-weight options, Astrea-G's automatic weight threshold, and
 * the hook-aligned CX schedule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"
#include "sim/frame_sim.hh"

namespace astrea
{
namespace
{

const ExperimentContext &
d5Hot()
{
    static ExperimentContext ctx = [] {
        ExperimentConfig cfg;
        cfg.distance = 5;
        cfg.physicalErrorRate = 2e-3;
        return ExperimentContext(cfg);
    }();
    return ctx;
}

// ------------------------------------------------ weight quantization

TEST(AblationQuantization, ExactModeMatchesMwpmWeights)
{
    const auto &ctx = d5Hot();
    AstreaConfig exact_cfg;
    exact_cfg.quantizedWeights = false;
    AstreaDecoder exact_dec(ctx.gwt(), exact_cfg);
    auto mwpm = mwpmFactory()(ctx);

    Rng rng(3);
    BitVec dets, obs;
    int checked = 0;
    while (checked < 100) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        checked++;
        DecodeResult a = exact_dec.decode(defects);
        DecodeResult m = mwpm->decode(defects);
        // Same (exact) weights, both exact searches: equal optima.
        EXPECT_NEAR(a.matchingWeight, m.matchingWeight, 1e-4);
        EXPECT_EQ(a.obsMask, m.obsMask);
    }
}

TEST(AblationQuantization, QuantizedWeightNearExact)
{
    const auto &ctx = d5Hot();
    AstreaDecoder quant(ctx.gwt());
    AstreaConfig exact_cfg;
    exact_cfg.quantizedWeights = false;
    AstreaDecoder exact(ctx.gwt(), exact_cfg);

    Rng rng(5);
    BitVec dets, obs;
    int checked = 0;
    while (checked < 100) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        checked++;
        double dq = quant.decode(defects).matchingWeight;
        double de = exact.decode(defects).matchingWeight;
        // Each pair is off by at most half an LSB of the 8-bit table.
        double slack = 0.5 / kWeightScale *
                           static_cast<double>(defects.size()) +
                       1e-6;
        EXPECT_LE(std::abs(dq - de), slack);
    }
}

// --------------------------------------------------- effective weights

TEST(AblationEffectiveWeights, DisablingNeverImprovesWeight)
{
    const auto &ctx = d5Hot();
    AstreaDecoder with(ctx.gwt());
    AstreaConfig no_eff;
    no_eff.useEffectiveWeights = false;
    AstreaDecoder without(ctx.gwt(), no_eff);

    Rng rng(7);
    BitVec dets, obs;
    int checked = 0;
    while (checked < 200) {
        ctx.sampler().sample(rng, dets, obs);
        auto defects = dets.onesIndices();
        if (defects.empty() || defects.size() > 10)
            continue;
        checked++;
        DecodeResult a = with.decode(defects);
        DecodeResult b = without.decode(defects);
        EXPECT_LE(a.matchingWeight, b.matchingWeight + 1e-9);
    }
}

TEST(AblationEffectiveWeights, DisablingHurtsAccuracy)
{
    // Restricting pairs to direct chains must not help, and usually
    // hurts, the logical error rate.
    const auto &ctx = d5Hot();
    AstreaConfig no_eff;
    no_eff.useEffectiveWeights = false;

    const uint64_t shots = 150000;
    auto with =
        runMemoryExperiment(ctx, astreaFactory(), shots, 11);
    auto without =
        runMemoryExperiment(ctx, astreaFactory(no_eff), shots, 11);
    ASSERT_GT(with.logicalErrors.successes, 20u);
    EXPECT_GE(without.logicalErrors.successes * 10,
              with.logicalErrors.successes * 9);
}

// ------------------------------------------------------------ auto Wth

TEST(AutoWth, ScalesWithRegime)
{
    // Lower LER regimes need higher thresholds.
    double d7_hi = defaultWeightThreshold(7, 1e-3);
    double d7_lo = defaultWeightThreshold(7, 1e-4);
    double d9_lo = defaultWeightThreshold(9, 1e-4);
    EXPECT_GT(d7_lo, d7_hi);
    EXPECT_GT(d9_lo, d7_lo);
    // The paper's operating point: Wth ~ 7 at d = 7, p = 1e-3.
    EXPECT_NEAR(d7_hi, 7.0, 1.0);
}

TEST(AutoWth, FactoryResolvesZeroThreshold)
{
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    auto dec = astreaGFactory()(ctx);
    auto *ag = dynamic_cast<AstreaGDecoder *>(dec.get());
    ASSERT_NE(ag, nullptr);
    EXPECT_GT(ag->config().weightThresholdDecades, 0.0);
    EXPECT_NEAR(ag->config().weightThresholdDecades,
                defaultWeightThreshold(5, 1e-3), 1e-9);
}

TEST(AutoWth, ExplicitThresholdSurvivesFactory)
{
    ExperimentConfig cfg;
    cfg.distance = 5;
    cfg.physicalErrorRate = 1e-3;
    ExperimentContext ctx(cfg);
    AstreaGConfig agc;
    agc.weightThresholdDecades = 5.5;
    auto dec = astreaGFactory(agc)(ctx);
    auto *ag = dynamic_cast<AstreaGDecoder *>(dec.get());
    ASSERT_NE(ag, nullptr);
    EXPECT_DOUBLE_EQ(ag->config().weightThresholdDecades, 5.5);
}

TEST(AutoWth, LerEstimateMatchesMeasurementsWithinFactor)
{
    // The scaling fit behind the auto threshold should be within an
    // order of magnitude of the measured LERs it was fitted to.
    struct Point
    {
        uint32_t d;
        double p;
        double measured;
    };
    // Measured with this simulator (MWPM, 3e5+ shots).
    const Point points[] = {
        {3, 1e-3, 6.6e-4}, {5, 1e-3, 9.0e-5}, {7, 1e-3, 2.0e-5}};
    for (const auto &pt : points) {
        double est = estimateLogicalErrorRate(pt.d, pt.p);
        EXPECT_LT(std::abs(std::log10(est / pt.measured)), 1.0)
            << "d=" << pt.d;
    }
}

// -------------------------------------------------------- CX schedule

TEST(AblationCxSchedule, HookAlignedCircuitIsValid)
{
    ExperimentConfig cfg;
    cfg.distance = 3;
    cfg.physicalErrorRate = 1e-3;
    cfg.cxSchedule = CxSchedule::HookAligned;
    ExperimentContext ctx(cfg);
    EXPECT_EQ(ctx.circuit().numDetectors(), 16u);

    // Detectors stay deterministic without noise.
    SurfaceCodeLayout layout(3);
    MemoryExperimentSpec spec;
    spec.distance = 3;
    spec.noise = NoiseModel::noiseless();
    spec.cxSchedule = CxSchedule::HookAligned;
    Circuit c = buildMemoryCircuit(layout, spec);
    FrameSimulator sim(c);
    Rng rng(1);
    BitVec dets, obs;
    sim.sample(rng, dets, obs);
    EXPECT_TRUE(dets.none());
}

TEST(AblationCxSchedule, HookAlignedWorsensLer)
{
    // Aligned hooks shorten logical chains: the bad schedule must show
    // a clearly higher logical error rate at d = 5.
    ExperimentConfig good_cfg;
    good_cfg.distance = 5;
    good_cfg.physicalErrorRate = 2e-3;
    ExperimentConfig bad_cfg = good_cfg;
    bad_cfg.cxSchedule = CxSchedule::HookAligned;

    ExperimentContext good(good_cfg);
    ExperimentContext bad(bad_cfg);
    const uint64_t shots = 150000;
    auto rg = runMemoryExperiment(good, mwpmFactory(), shots, 13);
    auto rb = runMemoryExperiment(bad, mwpmFactory(), shots, 13);
    ASSERT_GT(rg.logicalErrors.successes, 10u);
    EXPECT_GT(rb.logicalErrors.successes,
              rg.logicalErrors.successes * 3 / 2);
}

// -------------------------------------------- multi-decoder estimator

TEST(SemiAnalyticMulti, PairsDecodersOnIdenticalFaults)
{
    SemiAnalyticConfig cfg;
    cfg.maxFaults = 4;
    cfg.shotsPerK = 4000;
    cfg.seed = 21;
    ExperimentConfig ec;
    ec.distance = 3;
    ec.physicalErrorRate = 2e-3;
    ExperimentContext ctx(ec);

    // The same decoder twice must yield bit-identical results.
    auto r = estimateLerSemiAnalyticMulti(
        ctx, {mwpmFactory(), mwpmFactory()}, cfg);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].failuresSeen, r[1].failuresSeen);
    EXPECT_DOUBLE_EQ(r[0].ler, r[1].ler);
}

TEST(SemiAnalyticMulti, AdaptiveModeExtendsShots)
{
    SemiAnalyticConfig fixed;
    fixed.maxFaults = 3;
    fixed.shotsPerK = 500;
    fixed.seed = 23;

    SemiAnalyticConfig adaptive = fixed;
    adaptive.targetFailures = 100000;  // Unreachable: run to the cap.
    adaptive.maxShotsPerK = 2000;

    ExperimentConfig ec;
    ec.distance = 3;
    ec.physicalErrorRate = 2e-3;
    ExperimentContext ctx(ec);

    auto rf = estimateLerSemiAnalytic(ctx, mwpmFactory(), fixed);
    auto ra = estimateLerSemiAnalytic(ctx, mwpmFactory(), adaptive);
    EXPECT_EQ(rf.shotsUsed[2], 500u);
    EXPECT_EQ(ra.shotsUsed[2], 2000u);
}

} // namespace
} // namespace astrea
