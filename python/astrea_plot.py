#!/usr/bin/env python3
"""Plotting companion for the bench suite (artifact Appendix B.5/B.6).

The paper's Zenodo artifact ships ``astrea_plot.py`` to turn experiment
output files into the evaluation figures; this is the equivalent for
this reproduction. It consumes either

* the artifact-convention files written by ``tools/astrea_cli``
  (``plot_ler`` on experiment-1 output, ``plot_hw`` on experiment-6
  output), or
* the consolidated ``bench_output.txt`` written by running every bench
  binary (``plot_bench`` extracts the Fig. 12/14-style sweeps).

Requires matplotlib + numpy (not bundled; any recent version works).

Usage:
    python3 astrea_plot.py plot_ler  <experiment1-output> <out.png>
    python3 astrea_plot.py plot_hw   <experiment6-output> <out.png>
    python3 astrea_plot.py plot_bench <bench_output.txt>  <out-prefix>
"""

import sys


def _require_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt  # noqa: F401

        return matplotlib.pyplot
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")


def plot_ler(in_path, out_path):
    """Experiment-1 files: d p shots errM errA mwpmLER agLER gaveups."""
    plt = _require_matplotlib()
    ps, mwpm, astrea_g = [], [], []
    with open(in_path) as f:
        for line in f:
            parts = line.split()
            if len(parts) < 7:
                continue
            ps.append(float(parts[1]))
            mwpm.append(float(parts[5]))
            astrea_g.append(float(parts[6]))
    if not ps:
        sys.exit(f"no experiment-1 rows in {in_path}")

    fig, ax = plt.subplots(figsize=(5, 3.2))
    ax.plot(ps, mwpm, "o-", label="MWPM")
    ax.plot(ps, astrea_g, "s--", label="Astrea-G")
    ax.set_xscale("log")
    ax.set_yscale("log")
    ax.set_xlabel("physical error rate p")
    ax.set_ylabel("logical error rate")
    ax.legend()
    ax.grid(True, which="both", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=200)
    print(f"wrote {out_path}")


def plot_hw(in_path, out_path):
    """Experiment-6 files: 'HW, count' lines."""
    plt = _require_matplotlib()
    hws, counts = [], []
    with open(in_path) as f:
        for line in f:
            parts = [p.strip() for p in line.split(",")]
            if len(parts) != 2:
                continue
            hws.append(int(parts[0]))
            counts.append(int(parts[1]))
    if not hws:
        sys.exit(f"no experiment-6 rows in {in_path}")
    total = sum(counts)

    fig, ax = plt.subplots(figsize=(5, 3.2))
    ax.semilogy(hws, [c / total for c in counts], "x-")
    ax.set_xlabel("Hamming weight")
    ax.set_ylabel("probability")
    ax.grid(True, which="both", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=200)
    print(f"wrote {out_path}")


def plot_bench(in_path, out_prefix):
    """Extract the Fig. 12 / Fig. 14 sweeps from bench_output.txt."""
    plt = _require_matplotlib()
    sections = {}
    current = None
    with open(in_path) as f:
        for line in f:
            if line.startswith("#####"):
                current = line.split("/")[-1].strip()
                sections[current] = []
            elif current:
                sections[current].append(line.rstrip())

    for name, fig_id in (("bench_ler_vs_p_d7", "fig12"),
                         ("bench_ler_vs_p_d9", "fig14")):
        if name not in sections:
            continue
        ps, mwpm, ag = [], [], []
        for line in sections[name]:
            parts = line.split()
            # Sweep rows start with the integer p multiplier.
            if len(parts) >= 3 and parts[0].isdigit():
                try:
                    ps.append(int(parts[0]) * 1e-4)
                    mwpm.append(float(parts[1]))
                    ag.append(float(parts[2]))
                except ValueError:
                    continue
        if not ps:
            continue
        fig, ax = plt.subplots(figsize=(5, 3.2))
        ax.plot(ps, mwpm, "o-", label="MWPM (semi-analytic)")
        ax.plot(ps, ag, "s--", label="Astrea-G (semi-analytic)")
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.set_xlabel("physical error rate p")
        ax.set_ylabel("logical error rate")
        ax.legend()
        ax.grid(True, which="both", alpha=0.3)
        fig.tight_layout()
        out = f"{out_prefix}_{fig_id}.png"
        fig.savefig(out, dpi=200)
        print(f"wrote {out}")


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    cmd, in_path, out = sys.argv[1], sys.argv[2], sys.argv[3]
    if cmd == "plot_ler":
        plot_ler(in_path, out)
    elif cmd == "plot_hw":
        plot_hw(in_path, out)
    elif cmd == "plot_bench":
        plot_bench(in_path, out)
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main()
